(* Fault-injection layer tests: the pure decision stream shared by both
   executors, the majority voter, hook determinism and observational
   purity, TMR masking / plain detection on a hand-built workload, the
   timing simulator's injection accounting (rate 0 = bit-identical to
   today, rate > 0 = same timing, both tick loops agree), fault-schedule
   shrinking, and the fault-injection regression corpus. *)

module Urng = Occamy_util.Rng
module Vop = Occamy_isa.Vop
module Interp = Occamy_isa.Interp
module Program = Occamy_isa.Program
module Loop_ir = Occamy_compiler.Loop_ir
module Codegen = Occamy_compiler.Codegen
module Analysis = Occamy_compiler.Analysis
module Workload = Occamy_core.Workload
module Config = Occamy_core.Config
module Arch = Occamy_core.Arch
module Sim = Occamy_core.Sim
module Metrics = Occamy_core.Metrics
module Trace = Occamy_obs.Trace
module Event = Occamy_obs.Event
module Diff = Occamy_check.Diff
module Inject = Occamy_check.Inject
module Shrink = Occamy_check.Shrink
module Corpus = Occamy_check.Corpus
module Invariant = Occamy_check.Invariant
module Level = Occamy_mem.Level

open Loop_ir

(* ---------------- the pure decision stream -------------------------- *)

let decisions ~seed ~stream ~rate ~len n =
  List.init n (fun index -> Urng.flip_decision ~seed ~stream ~rate ~index ~len)

let test_flip_decision_pure () =
  Helpers.check_bool "same coordinates, same decisions" true
    (decisions ~seed:11 ~stream:3 ~rate:0.5 ~len:16 256
    = decisions ~seed:11 ~stream:3 ~rate:0.5 ~len:16 256);
  List.iter
    (fun d -> Helpers.check_bool "rate 0 never fires" true (d = None))
    (decisions ~seed:11 ~stream:3 ~rate:0.0 ~len:16 64);
  List.iter
    (fun d ->
      match d with
      | None -> Alcotest.fail "rate 1 must fire on every opportunity"
      | Some (lane, bit) ->
        Helpers.check_bool "lane in range" true (lane >= 0 && lane < 7);
        Helpers.check_bool "bit in range" true (bit >= 0 && bit < 32))
    (decisions ~seed:11 ~stream:3 ~rate:1.0 ~len:7 200)

let test_flip_decision_streams_independent () =
  let a = decisions ~seed:11 ~stream:0 ~rate:0.5 ~len:16 200 in
  let b = decisions ~seed:11 ~stream:1 ~rate:0.5 ~len:16 200 in
  Helpers.check_bool "distinct streams decide differently" false (a = b);
  let c = decisions ~seed:12 ~stream:0 ~rate:0.5 ~len:16 200 in
  Helpers.check_bool "distinct seeds decide differently" false (a = c)

let test_mix3_pure () =
  for i = 0 to 63 do
    Helpers.check_bool "mix3 non-negative" true
      (Urng.mix3 ~seed:5 ~stream:9 i >= 0);
    Helpers.check_int "mix3 deterministic"
      (Urng.mix3 ~seed:5 ~stream:9 i)
      (Urng.mix3 ~seed:5 ~stream:9 i)
  done;
  Helpers.check_bool "mix3 streams differ" true
    (List.init 64 (Urng.mix3 ~seed:5 ~stream:0)
    <> List.init 64 (Urng.mix3 ~seed:5 ~stream:1))

(* ---------------- the majority voter -------------------------------- *)

let test_vote_majority () =
  (* All 2-of-3 agreement patterns recover the majority value. *)
  Helpers.check_float "a a b" 1.5 (Vop.vote 1.5 1.5 9.0);
  Helpers.check_float "a b a" 1.5 (Vop.vote 1.5 9.0 1.5);
  Helpers.check_float "b a a" 1.5 (Vop.vote 9.0 1.5 1.5);
  Helpers.check_float "a a a" 1.5 (Vop.vote 1.5 1.5 1.5);
  (* No majority: documented fallback to the first operand. *)
  Helpers.check_float "all distinct" 1.0 (Vop.vote 1.0 2.0 3.0)

let test_vote_nan_and_zero () =
  (* Bit-compare semantics: a replicated NaN poison votes as itself
     (Float.equal, not (=)), so TMR never "repairs" poison lanes. *)
  Helpers.check_bool "nan nan x -> nan" true
    (Float.is_nan (Vop.vote Float.nan Float.nan 1.0));
  Helpers.check_bool "x nan nan -> nan" true
    (Float.is_nan (Vop.vote 1.0 Float.nan Float.nan));
  Helpers.check_bool "nan x nan -> nan" true
    (Float.is_nan (Vop.vote Float.nan 1.0 Float.nan));
  (* Float.equal (compare-based) identifies -0. with 0., so the zeros
     all agree and the first operand's representation is kept — the
     voter never invents a value outside its inputs. *)
  Helpers.check_bool "-0 0 0 -> zero" true (Vop.vote (-0.0) 0.0 0.0 = 0.0);
  Helpers.check_bool "-0 0 0 keeps first representation" true
    (Int64.equal
       (Int64.bits_of_float (Vop.vote (-0.0) 0.0 0.0))
       (Int64.bits_of_float (-0.0)))

let test_flip_f32_involution () =
  List.iter
    (fun v ->
      let v32 = Int32.float_of_bits (Int32.bits_of_float v) in
      for bit = 0 to 31 do
        let flipped = Inject.flip_f32 v32 bit in
        Helpers.check_bool "flip changes the f32 encoding" false
          (Int32.equal (Int32.bits_of_float flipped) (Int32.bits_of_float v32));
        Helpers.check_bool "flip is an involution" true
          (Int32.equal
             (Int32.bits_of_float (Inject.flip_f32 flipped bit))
             (Int32.bits_of_float v32))
      done)
    [ 0.0; 1.0; -1.75; 3.14159; 1e-3 ]

(* ---------------- a hand-built workload ----------------------------- *)

(* One elementwise phase, forced vector (no multi-versioning) so the
   eligible-opportunity stream is stable: per chunk, [reps] loads of a,
   [reps] loads of b, [reps] adds — votes and stores are outside the
   sphere of replication. *)
let add_loops =
  [
    loop ~name:"add_phase" ~trip_count:64 ~level:Level.L2
      [ store "o" ("a".%[0] +: "b".%[0]) ];
  ]

let options = { Codegen.default_options with Codegen.multiversion = false }

let compile_add ~tmr =
  Codegen.compile_workload
    ~options:{ options with Codegen.tmr }
    ~name:(if tmr then "t-add-tmr" else "t-add-plain")
    ~kind:Workload.Mixed add_loops

let add_init () =
  Diff.fresh_image ~seed:97
    ~extra_plan:(Codegen.array_plan add_loops)
    add_loops

let count_opportunities wl init =
  let n = ref 0 in
  ignore (Inject.exec ~fault_hook:(Inject.count_hook n) wl init);
  !n

(* ---------------- hooks: determinism and observational purity ------- *)

let test_hooks_observational () =
  let wl = compile_add ~tmr:true in
  let init = add_init () in
  let n1 = count_opportunities wl init in
  let n2 = count_opportunities wl init in
  Helpers.check_int "opportunity count deterministic" n1 n2;
  Helpers.check_bool "TMR workload has opportunities" true (n1 > 0);
  let plain = count_opportunities (compile_add ~tmr:false) init in
  Helpers.check_bool "TMR sees more opportunities than plain" true (n1 > plain);
  (* A counting hook must not perturb values. *)
  let base =
    Inject.snapshot (Inject.exec wl init) wl.Workload.program
  in
  let counted =
    Inject.snapshot
      (Inject.exec ~fault_hook:(Inject.count_hook (ref 0)) wl init)
      wl.Workload.program
  in
  Helpers.check_bool "count_hook is observational" true
    (Inject.first_mismatch wl.Workload.program base counted = None)

let test_schedule_hook_deterministic () =
  let wl = compile_add ~tmr:false in
  let init = add_init () in
  let faults = [ { Inject.f_op = 0; f_lane = 2; f_bit = 20 } ] in
  let run () =
    let applied = ref [] in
    let s =
      Inject.snapshot
        (Inject.exec ~fault_hook:(Inject.schedule_hook ~applied faults) wl init)
        wl.Workload.program
    in
    (s, !applied)
  in
  let s1, a1 = run () in
  let s2, a2 = run () in
  Helpers.check_bool "same schedule, same corrupted memory" true
    (Inject.first_mismatch wl.Workload.program s1 s2 = None);
  Helpers.check_bool "applied faults recorded identically" true (a1 = a2);
  Helpers.check_int "exactly one flip landed" 1 (List.length a1)

let test_stream_hook_matches_flip_decision () =
  (* The interpreter-side stream hook must fire exactly where the pure
     formula says — the property that makes a (seed, rate) pair one
     schedule across both executors. *)
  let wl = compile_add ~tmr:false in
  let init = add_init () in
  (* First pass: log the transfer length of every eligible opportunity. *)
  let lens = ref [] in
  let log_hook ~site ~data:_ ~off:_ ~len =
    if Inject.eligible site then lens := len :: !lens
  in
  ignore (Inject.exec ~fault_hook:log_hook wl init);
  let lens = Array.of_list (List.rev !lens) in
  let seed = 31 and rate = 0.4 and stream = 5 in
  let expected =
    List.filter_map
      (fun index ->
        match
          Urng.flip_decision ~seed ~stream ~rate ~index ~len:lens.(index)
        with
        | None -> None
        | Some (lane, bit) ->
          Some { Inject.f_op = index; f_lane = lane; f_bit = bit })
      (List.init (Array.length lens) Fun.id)
  in
  let applied = ref [] in
  ignore
    (Inject.exec
       ~fault_hook:(Inject.stream_hook ~stream ~seed ~rate ~applied ())
       wl init);
  Helpers.check_bool "stream hook = pure flip_decision" true
    (List.rev !applied = expected);
  Helpers.check_bool "rate 0.4 fired at least once" true (expected <> [])

(* ---------------- masking and detection ----------------------------- *)

let test_tmr_masks_single_faults () =
  let wl = compile_add ~tmr:true in
  let init = add_init () in
  let n_ops = count_opportunities wl init in
  let base = Inject.snapshot (Inject.exec wl init) wl.Workload.program in
  List.iter
    (fun (op, bit) ->
      let f = { Inject.f_op = op mod n_ops; f_lane = 0; f_bit = bit } in
      let applied = ref [] in
      let s =
        Inject.snapshot
          (Inject.exec ~fault_hook:(Inject.schedule_hook ~applied [ f ]) wl
             init)
          wl.Workload.program
      in
      Helpers.check_bool "fault landed" true (!applied <> []);
      match Inject.first_mismatch wl.Workload.program s base with
      | None -> ()
      | Some where ->
        Alcotest.failf "single fault op %d bit %d escaped TMR at %s"
          f.Inject.f_op bit where)
    [ (0, 20); (1, 3); (2, 30); (3, 20); (4, 0); (5, 22); (6, 20); (7, 31) ]

let test_plain_fault_detected () =
  let wl = compile_add ~tmr:false in
  let init = add_init () in
  let base = Inject.snapshot (Inject.exec wl init) wl.Workload.program in
  let applied = ref [] in
  let s =
    Inject.snapshot
      (Inject.exec
         ~fault_hook:
           (Inject.schedule_hook ~applied
              [ { Inject.f_op = 0; f_lane = 0; f_bit = 20 } ])
         wl init)
      wl.Workload.program
  in
  Helpers.check_bool "fault landed" true (!applied <> []);
  Helpers.check_bool "plain lowering lets the flip reach the output" true
    (Inject.first_mismatch wl.Workload.program s base <> None)

let test_analysis_tmr_accounting () =
  let l = List.hd add_loops in
  let plain = Analysis.analyse l in
  let tmr = Analysis.analyse ~tmr:true l in
  Helpers.check_int "loads tripled" (3 * plain.Analysis.load_instrs)
    tmr.Analysis.load_instrs;
  Helpers.check_int "stores stay single" plain.Analysis.store_instrs
    tmr.Analysis.store_instrs;
  Helpers.check_int "compute tripled plus one vote per store"
    ((3 * plain.Analysis.comp_instrs) + plain.Analysis.store_instrs)
    tmr.Analysis.comp_instrs;
  Helpers.check_int "footprint unchanged" plain.Analysis.footprint_bytes
    tmr.Analysis.footprint_bytes

(* ---------------- the oracle end-to-end ----------------------------- *)

let test_check_case_masks () =
  List.iter
    (fun seed ->
      match Inject.check_case ~trials:4 seed with
      | Error f ->
        Alcotest.failf "seed %d: %s: %s" seed f.Diff.stage f.Diff.message
      | Ok stats ->
        Helpers.check_int
          (Printf.sprintf "seed %d fully masked" seed)
          stats.Inject.tmr_trials stats.Inject.tmr_masked)
    [ 0; 3 ]

let test_corpus_inject_replays () =
  let names = List.map (fun e -> e.Corpus.i_name) Corpus.inject_entries in
  Helpers.check_bool "corpus names unique" true
    (List.sort_uniq compare names = List.sort compare names);
  Helpers.check_bool "both expectations pinned" true
    (List.exists (fun e -> e.Corpus.i_expect = Corpus.Masked_by_tmr)
       Corpus.inject_entries
    && List.exists (fun e -> e.Corpus.i_expect = Corpus.Detected_by_plain)
         Corpus.inject_entries);
  List.iter
    (fun e ->
      match Corpus.replay_inject e with
      | Ok _ -> ()
      | Error f ->
        Alcotest.failf "inject corpus %s (seed %d): %s: %s" e.Corpus.i_name
          e.Corpus.i_seed f.Diff.stage f.Diff.message)
    Corpus.inject_entries

(* ---------------- the timing simulator ------------------------------ *)

let sim_loops =
  [
    loop ~name:"sim_phase" ~trip_count:1024 ~level:Level.L2
      [ store "so" (("sa".%[0] *: "sb".%[0]) +: "sc".%[0]) ];
  ]

let sim_wl =
  lazy
    (Codegen.compile_workload ~options ~name:"t-inject-sim"
       ~kind:Workload.Mixed sim_loops)

let simulate ?(fast_forward = true) ~rate ~seed () =
  let cfg =
    {
      Config.default with
      Config.inject_rate = rate;
      inject_seed = seed;
      fast_forward;
    }
  in
  let trace = Trace.for_sim ~capacity:(1 lsl 16) ~cores:cfg.Config.cores () in
  let wls = List.init cfg.Config.cores (fun _ -> Lazy.force sim_wl) in
  (Sim.simulate ~cfg ~trace ~arch:Arch.Occamy wls, trace)

let fault_totals (m : Metrics.t) =
  Array.fold_left
    (fun (o, f) c ->
      (o + c.Metrics.fault_opportunities, f + c.Metrics.faults_injected))
    (0, 0) m.Metrics.cores

let test_sim_rate_zero_is_disabled () =
  (* inject_rate = 0 must be bit-identical to today's simulator, seed or
     no seed — the one-branch guard never takes the injection path. *)
  let m0, t0 = simulate ~rate:0.0 ~seed:0 () in
  let m1, t1 = simulate ~rate:0.0 ~seed:123456 () in
  (match Invariant.check_equivalent m0 m1 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "rate-0 runs differ: %s" msg);
  (match Invariant.check_same_trace t0 t1 with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "rate-0 traces differ: %s" msg);
  let o, f = fault_totals m0 in
  Helpers.check_int "no opportunities counted at rate 0" 0 o;
  Helpers.check_int "no faults at rate 0" 0 f

let test_sim_injection_never_perturbs_timing () =
  (* Sim-side injection is observational marking: heavy injection must
     leave every timing metric bit-identical to the uninjected run. *)
  let m0, _ = simulate ~rate:0.0 ~seed:7 () in
  let m1, _ = simulate ~rate:0.5 ~seed:7 () in
  Helpers.check_int "total cycles unchanged" m0.Metrics.total_cycles
    m1.Metrics.total_cycles;
  Helpers.check_float "simd util unchanged" m0.Metrics.simd_util
    m1.Metrics.simd_util;
  Helpers.check_float "traffic unchanged" (Metrics.total_mem_bytes m0)
    (Metrics.total_mem_bytes m1);
  Array.iteri
    (fun i c0 ->
      let c1 = m1.Metrics.cores.(i) in
      Helpers.check_int "finish unchanged" c0.Metrics.finish c1.Metrics.finish;
      Helpers.check_int "issued compute unchanged" c0.Metrics.issued_compute
        c1.Metrics.issued_compute;
      Helpers.check_int "issued mem unchanged" c0.Metrics.issued_mem
        c1.Metrics.issued_mem)
    m0.Metrics.cores;
  let o, f = fault_totals m1 in
  Helpers.check_bool "rate 0.5 injects faults" true (f > 0);
  Helpers.check_bool "faults bounded by opportunities" true (f <= o)

let test_sim_both_loops_agree_under_injection () =
  let m_ff, t_ff = simulate ~fast_forward:true ~rate:0.3 ~seed:9 () in
  let m_nv, t_nv = simulate ~fast_forward:false ~rate:0.3 ~seed:9 () in
  (match Invariant.check_equivalent m_nv m_ff with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "loops diverged under injection: %s" msg);
  (match Invariant.check_same_trace t_nv t_ff with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "traces diverged under injection: %s" msg);
  (* One Fault_inject event per counted flip, unless the ring dropped. *)
  let _, f = fault_totals m_ff in
  let traced = ref 0 and dropped = ref 0 in
  Trace.iter t_ff (fun ~track:_ ~cycle:_ ev ->
      match ev with Event.Fault_inject _ -> incr traced | _ -> ());
  for tr = 0 to Trace.num_tracks t_ff - 1 do
    dropped := !dropped + Trace.dropped t_ff ~track:tr
  done;
  if !dropped = 0 then Helpers.check_int "events match counters" f !traced;
  Helpers.check_bool "rate 0.3 injected something" true (f > 0)

let test_sim_fault_stream_deterministic () =
  let counters m = Array.map (fun c -> c.Metrics.faults_injected) m.Metrics.cores in
  let m1, _ = simulate ~rate:0.25 ~seed:41 () in
  let m2, _ = simulate ~rate:0.25 ~seed:41 () in
  Helpers.check_bool "same seed, same per-core fault counts" true
    (counters m1 = counters m2);
  let m3, _ = simulate ~rate:0.25 ~seed:42 () in
  let o1, _ = fault_totals m1 and o3, _ = fault_totals m3 in
  Helpers.check_int "opportunities independent of seed" o1 o3

(* ---------------- shrinking fault schedules ------------------------- *)

let test_minimise_list_greedy () =
  let xs = [ 1; 2; 3; 4; 5; 6 ] in
  Helpers.check_bool "single necessary element" true
    (Shrink.minimise_list ~keep:(fun ys -> List.mem 4 ys) xs = [ 4 ]);
  Helpers.check_bool "pair retained in order" true
    (Shrink.minimise_list
       ~keep:(fun ys -> List.mem 2 ys && List.mem 5 ys)
       xs
    = [ 2; 5 ]);
  Helpers.check_bool "vacuous predicate shrinks to empty" true
    (Shrink.minimise_list ~keep:(fun _ -> true) xs = []);
  Helpers.check_bool "unsatisfiable keep returns original" true
    (Shrink.minimise_list ~keep:(fun ys -> List.length ys >= 6) xs = xs)

let test_minimise_faults_two_fault_core () =
  (* A single fault is always masked by TMR; two identical flips on two
     replicas of the same load defeat the vote. Shrinking a 3-fault
     witness must land on a still-failing schedule in which every
     surviving fault is individually necessary — i.e. a genuine
     multi-fault core, not a single flip. *)
  let wl = compile_add ~tmr:true in
  let init = add_init () in
  (* Locate the first two load opportunities: consecutive replicas of
     the same chunk's first source. *)
  let sites = ref [] in
  let log_hook ~site ~data:_ ~off:_ ~len:_ =
    if Inject.eligible site then sites := site :: !sites
  in
  ignore (Inject.exec ~fault_hook:log_hook wl init);
  let sites = Array.of_list (List.rev !sites) in
  Helpers.check_bool "first two opportunities are load replicas" true
    (Array.length sites > 2
    && sites.(0) = Interp.Site_load
    && sites.(1) = Interp.Site_load);
  let base = Inject.snapshot (Inject.exec wl init) wl.Workload.program in
  let still_fails faults =
    let s =
      Inject.snapshot
        (Inject.exec ~fault_hook:(Inject.schedule_hook ~applied:(ref []) faults)
           wl init)
        wl.Workload.program
    in
    Inject.first_mismatch wl.Workload.program s base <> None
  in
  let pair_a = { Inject.f_op = 0; f_lane = 0; f_bit = 20 } in
  let pair_b = { Inject.f_op = 1; f_lane = 0; f_bit = 20 } in
  let decoy = { Inject.f_op = 5; f_lane = 0; f_bit = 19 } in
  let witness = [ pair_a; pair_b; decoy ] in
  Helpers.check_bool "3-fault witness defeats the vote" true
    (still_fails witness);
  Helpers.check_bool "each fault alone is masked" true
    (List.for_all (fun f -> not (still_fails [ f ])) witness);
  let core = Inject.minimise_faults ~still_fails witness in
  Helpers.check_bool "minimised schedule still fails" true (still_fails core);
  Helpers.check_int "a two-fault core" 2 (List.length core);
  List.iter
    (fun f ->
      Helpers.check_bool "every survivor necessary" false
        (still_fails (List.filter (fun g -> g <> f) core)))
    core

let suites =
  [
    ( "inject.stream",
      [
        Alcotest.test_case "flip_decision pure" `Quick test_flip_decision_pure;
        Alcotest.test_case "streams independent" `Quick
          test_flip_decision_streams_independent;
        Alcotest.test_case "mix3 pure" `Quick test_mix3_pure;
      ] );
    ( "inject.voter",
      [
        Alcotest.test_case "majority patterns" `Quick test_vote_majority;
        Alcotest.test_case "nan and signed zero" `Quick test_vote_nan_and_zero;
        Alcotest.test_case "flip_f32 involution" `Quick
          test_flip_f32_involution;
      ] );
    ( "inject.hooks",
      [
        Alcotest.test_case "hooks observational" `Quick
          test_hooks_observational;
        Alcotest.test_case "schedule deterministic" `Quick
          test_schedule_hook_deterministic;
        Alcotest.test_case "stream hook = formula" `Quick
          test_stream_hook_matches_flip_decision;
      ] );
    ( "inject.tmr",
      [
        Alcotest.test_case "single faults masked" `Quick
          test_tmr_masks_single_faults;
        Alcotest.test_case "plain fault detected" `Quick
          test_plain_fault_detected;
        Alcotest.test_case "analysis accounting" `Quick
          test_analysis_tmr_accounting;
        Alcotest.test_case "oracle on fresh seeds" `Slow test_check_case_masks;
        Alcotest.test_case "corpus replay" `Slow test_corpus_inject_replays;
      ] );
    ( "inject.sim",
      [
        Alcotest.test_case "rate 0 = disabled" `Quick
          test_sim_rate_zero_is_disabled;
        Alcotest.test_case "timing invariant" `Quick
          test_sim_injection_never_perturbs_timing;
        Alcotest.test_case "both loops agree" `Quick
          test_sim_both_loops_agree_under_injection;
        Alcotest.test_case "stream deterministic" `Quick
          test_sim_fault_stream_deterministic;
      ] );
    ( "inject.shrink",
      [
        Alcotest.test_case "minimise_list greedy" `Quick
          test_minimise_list_greedy;
        Alcotest.test_case "two-fault core" `Quick
          test_minimise_faults_two_fault_core;
      ] );
  ]
