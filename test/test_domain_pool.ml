(* Tests of the Domain-based parallel map layer: the contract is that
   parallelism is invisible — same outputs, same order, same exceptions
   as List.map — whatever the worker count. *)

module Dp = Occamy_util.Domain_pool

let test_empty () =
  Helpers.check_bool "empty list" true (Dp.map ~jobs:4 (fun x -> x + 1) [] = []);
  Helpers.check_bool "empty array" true
    (Dp.map_array ~jobs:4 (fun x -> x + 1) [||] = [||])

let test_jobs_exceed_tasks () =
  (* More workers than tasks must still produce every result, in order. *)
  Helpers.check_bool "8 jobs, 3 tasks" true
    (Dp.map ~jobs:8 (fun x -> x * x) [ 1; 2; 3 ] = [ 1; 4; 9 ])

let test_jobs1_sequential () =
  (* jobs = 1 bypasses domain spawning entirely: every task runs on the
     calling domain. *)
  let self = Domain.self () in
  let doms = Dp.map ~jobs:1 (fun _ -> Domain.self ()) (List.init 16 Fun.id) in
  Helpers.check_bool "all on calling domain" true
    (List.for_all (fun d -> d = self) doms)

let test_order_determinism () =
  let input = List.init 100 Fun.id in
  let expected = List.map (fun i -> (7 * i) + 3) input in
  for _ = 1 to 5 do
    Helpers.check_bool "jobs=4 order matches input order" true
      (Dp.map ~jobs:4 (fun i -> (7 * i) + 3) input = expected)
  done

let test_runs_each_task_once () =
  let count = Atomic.make 0 in
  let out =
    Dp.map ~jobs:4
      (fun i ->
        Atomic.incr count;
        i)
      (List.init 37 Fun.id)
  in
  Helpers.check_int "every result present" 37 (List.length out);
  Helpers.check_int "f ran once per task" 37 (Atomic.get count)

let test_exception_propagation () =
  (* A worker exception surfaces on the calling domain after the join;
     with several failures the lowest input index wins deterministically. *)
  let f i =
    if i = 13 then failwith "boom13"
    else if i = 57 then failwith "boom57"
    else i
  in
  (match Dp.map ~jobs:4 f (List.init 100 Fun.id) with
  | _ -> Alcotest.fail "expected a worker exception to propagate"
  | exception Failure msg ->
    Alcotest.(check string) "lowest-index error wins" "boom13" msg);
  match Dp.map ~jobs:1 f (List.init 100 Fun.id) with
  | _ -> Alcotest.fail "expected the sequential path to raise too"
  | exception Failure msg ->
    Alcotest.(check string) "sequential path same error" "boom13" msg

let test_invalid_jobs () =
  match Dp.map ~jobs:0 Fun.id [ 1; 2; 3 ] with
  | _ -> Alcotest.fail "jobs=0 must be rejected"
  | exception Invalid_argument _ -> ()

let test_recommended_jobs () =
  let j = Dp.recommended_jobs () in
  Helpers.check_bool "recommended >= 1" true (j >= 1);
  Helpers.check_bool "recommended capped" true (j <= 16);
  Helpers.check_int "cap applies" 1 (Dp.recommended_jobs ~cap:1 ())

let suites =
  [
    ( "domain_pool",
      [
        Alcotest.test_case "empty input" `Quick test_empty;
        Alcotest.test_case "jobs > tasks" `Quick test_jobs_exceed_tasks;
        Alcotest.test_case "jobs=1 sequential" `Quick test_jobs1_sequential;
        Alcotest.test_case "order determinism" `Quick test_order_determinism;
        Alcotest.test_case "runs once per task" `Quick test_runs_each_task_once;
        Alcotest.test_case "exception propagation" `Quick
          test_exception_propagation;
        Alcotest.test_case "invalid jobs" `Quick test_invalid_jobs;
        Alcotest.test_case "recommended jobs" `Quick test_recommended_jobs;
      ] );
  ]
