(* Tests of the Domain-based parallel map layer: the contract is that
   parallelism is invisible — same outputs, same order, same exceptions
   as List.map — whatever the worker count. *)

module Dp = Occamy_util.Domain_pool

let test_empty () =
  Helpers.check_bool "empty list" true (Dp.map ~jobs:4 (fun x -> x + 1) [] = []);
  Helpers.check_bool "empty array" true
    (Dp.map_array ~jobs:4 (fun x -> x + 1) [||] = [||])

let test_jobs_exceed_tasks () =
  (* More workers than tasks must still produce every result, in order. *)
  Helpers.check_bool "8 jobs, 3 tasks" true
    (Dp.map ~jobs:8 (fun x -> x * x) [ 1; 2; 3 ] = [ 1; 4; 9 ])

let test_jobs1_sequential () =
  (* jobs = 1 bypasses domain spawning entirely: every task runs on the
     calling domain. *)
  let self = Domain.self () in
  let doms = Dp.map ~jobs:1 (fun _ -> Domain.self ()) (List.init 16 Fun.id) in
  Helpers.check_bool "all on calling domain" true
    (List.for_all (fun d -> d = self) doms)

let test_order_determinism () =
  let input = List.init 100 Fun.id in
  let expected = List.map (fun i -> (7 * i) + 3) input in
  for _ = 1 to 5 do
    Helpers.check_bool "jobs=4 order matches input order" true
      (Dp.map ~jobs:4 (fun i -> (7 * i) + 3) input = expected)
  done

let test_runs_each_task_once () =
  let count = Atomic.make 0 in
  let out =
    Dp.map ~jobs:4
      (fun i ->
        Atomic.incr count;
        i)
      (List.init 37 Fun.id)
  in
  Helpers.check_int "every result present" 37 (List.length out);
  Helpers.check_int "f ran once per task" 37 (Atomic.get count)

let test_exception_propagation () =
  (* A worker exception surfaces on the calling domain after the join;
     with several failures the lowest input index wins deterministically. *)
  let f i =
    if i = 13 then failwith "boom13"
    else if i = 57 then failwith "boom57"
    else i
  in
  (match Dp.map ~jobs:4 f (List.init 100 Fun.id) with
  | _ -> Alcotest.fail "expected a worker exception to propagate"
  | exception Failure msg ->
    Alcotest.(check string) "lowest-index error wins" "boom13" msg);
  match Dp.map ~jobs:1 f (List.init 100 Fun.id) with
  | _ -> Alcotest.fail "expected the sequential path to raise too"
  | exception Failure msg ->
    Alcotest.(check string) "sequential path same error" "boom13" msg

let test_invalid_jobs () =
  match Dp.map ~jobs:0 Fun.id [ 1; 2; 3 ] with
  | _ -> Alcotest.fail "jobs=0 must be rejected"
  | exception Invalid_argument _ -> ()

let test_recommended_jobs () =
  let j = Dp.recommended_jobs () in
  Helpers.check_bool "recommended >= 1" true (j >= 1);
  Helpers.check_bool "recommended capped" true (j <= 16);
  Helpers.check_int "cap applies" 1 (Dp.recommended_jobs ~cap:1 ())

(* A private variable keeps these tests independent of any OCCAMY_JOBS
   in the surrounding environment. *)
let test_jobs_from_env () =
  let var = "OCCAMY_TEST_JOBS" in
  let warnings = ref [] in
  let resolve v =
    Unix.putenv var v;
    warnings := [];
    Dp.jobs_from_env ~var ~on_warning:(fun m -> warnings := m :: !warnings) ()
  in
  let recommended = Dp.recommended_jobs () in
  Helpers.check_int "valid value used" 3 (resolve "3");
  Helpers.check_bool "valid value: no warning" true (!warnings = []);
  Helpers.check_int "empty falls back" recommended (resolve "");
  Helpers.check_bool "empty: silent" true (!warnings = []);
  (* A set-but-invalid value must fall back *loudly*, naming the
     variable and the offending value. *)
  List.iter
    (fun bad ->
      Helpers.check_int
        (Printf.sprintf "%S falls back" bad)
        recommended (resolve bad);
      match !warnings with
      | [ msg ] ->
        Helpers.check_bool
          (Printf.sprintf "warning for %S names the variable" bad)
          true
          (Helpers.contains msg var && Helpers.contains msg bad)
      | ws ->
        Alcotest.failf "%S: expected exactly one warning, got %d" bad
          (List.length ws))
    [ "abc"; "0"; "-2"; "2.5" ]

let test_effective_workers () =
  let eff = Dp.effective_workers in
  Helpers.check_int "capped at cores" 4
    (eff ~oversubscribe:false ~cores:4 ~jobs:16 ~tasks:100);
  Helpers.check_int "capped at tasks" 3
    (eff ~oversubscribe:false ~cores:8 ~jobs:16 ~tasks:3);
  Helpers.check_int "capped at jobs" 2
    (eff ~oversubscribe:false ~cores:8 ~jobs:2 ~tasks:100);
  Helpers.check_int "oversubscribe lifts the core cap" 16
    (eff ~oversubscribe:true ~cores:4 ~jobs:16 ~tasks:100);
  Helpers.check_int "oversubscribe still capped at tasks" 5
    (eff ~oversubscribe:true ~cores:4 ~jobs:16 ~tasks:5);
  Helpers.check_int "floor of 1" 1
    (eff ~oversubscribe:false ~cores:0 ~jobs:4 ~tasks:100);
  Helpers.check_int "zero tasks floors at 1" 1
    (eff ~oversubscribe:false ~cores:8 ~jobs:4 ~tasks:0)

let test_oversubscribed_map () =
  (* Forcing more workers than this host has cores must change nothing
     about the results, and the stats must report the forced width. *)
  let input = List.init 50 Fun.id in
  let expected = List.map (fun i -> (3 * i) - 1) input in
  let seen = ref None in
  let out =
    Dp.map ~jobs:4 ~oversubscribe:true
      ~stats:(fun s -> seen := Some s)
      (fun i -> (3 * i) - 1)
      input
  in
  Helpers.check_bool "results identical" true (out = expected);
  match !seen with
  | None -> Alcotest.fail "stats callback did not fire"
  | Some s ->
    Helpers.check_int "forced worker count" 4 s.Dp.st_workers;
    Helpers.check_int "every task accounted" 50
      (Array.fold_left
         (fun acc w -> acc + w.Occamy_util.Work_steal.ws_tasks)
         0 s.Dp.st_per_worker)

let test_totals_accumulate () =
  Dp.reset_totals ();
  ignore (Dp.map ~jobs:2 ~oversubscribe:true (fun x -> x) (List.init 10 Fun.id));
  ignore (Dp.map ~jobs:1 (fun x -> x) (List.init 5 Fun.id));
  let t = Dp.totals () in
  Helpers.check_int "maps recorded" 2 t.Dp.t_maps;
  Helpers.check_int "tasks summed" 15 t.Dp.t_tasks;
  Helpers.check_int "max workers" 2 t.Dp.t_max_workers;
  Helpers.check_int "per-worker rows" 2 (Array.length t.Dp.t_per_worker);
  Helpers.check_bool "pool persists across maps" true (Dp.pool_size () >= 1);
  Dp.reset_totals ();
  Helpers.check_int "reset" 0 (Dp.totals ()).Dp.t_maps

let suites =
  [
    ( "domain_pool",
      [
        Alcotest.test_case "empty input" `Quick test_empty;
        Alcotest.test_case "jobs > tasks" `Quick test_jobs_exceed_tasks;
        Alcotest.test_case "jobs=1 sequential" `Quick test_jobs1_sequential;
        Alcotest.test_case "order determinism" `Quick test_order_determinism;
        Alcotest.test_case "runs once per task" `Quick test_runs_each_task_once;
        Alcotest.test_case "exception propagation" `Quick
          test_exception_propagation;
        Alcotest.test_case "invalid jobs" `Quick test_invalid_jobs;
        Alcotest.test_case "recommended jobs" `Quick test_recommended_jobs;
        Alcotest.test_case "jobs from env" `Quick test_jobs_from_env;
        Alcotest.test_case "effective workers" `Quick test_effective_workers;
        Alcotest.test_case "oversubscribed map" `Quick test_oversubscribed_map;
        Alcotest.test_case "totals accumulate" `Quick test_totals_accumulate;
      ] );
  ]
