(* The fuzzing subsystem's own tests: PRNG stream discipline, generator
   validity, the differential oracle end-to-end, shrinking guarantees,
   seeded-bug detection, and the regression corpus replay. *)

module Check = Occamy_check
module Rng = Occamy_check.Rng
module Gen = Occamy_check.Gen
module Diff = Occamy_check.Diff
module Shrink = Occamy_check.Shrink
module Fuzz = Occamy_check.Fuzz
module Corpus = Occamy_check.Corpus
module Loop_ir = Occamy_compiler.Loop_ir
module Codegen = Occamy_compiler.Codegen
module Json = Occamy_util.Json

let draw_n rng n = List.init n (fun _ -> Rng.bits64 rng)

(* ---------------- Rng ---------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  Helpers.check_bool "equal seeds, equal streams" true
    (draw_n a 64 = draw_n b 64);
  let c = Rng.create ~seed:43 in
  Helpers.check_bool "different seeds, different streams" false
    (draw_n (Rng.create ~seed:42) 64 = draw_n c 64)

let test_rng_split_independence () =
  (* The child's stream must not depend on what is later drawn from the
     parent, and vice versa: split first, interleave draws arbitrarily,
     and both streams match their uninterleaved replays. *)
  let p1 = Rng.create ~seed:7 in
  let c1 = Rng.split p1 in
  let parent_draws = draw_n p1 32 in
  let child_draws = draw_n c1 32 in
  let p2 = Rng.create ~seed:7 in
  let c2 = Rng.split p2 in
  let child_first = draw_n c2 32 in
  let parent_after = draw_n p2 32 in
  Helpers.check_bool "child stream replays" true (child_draws = child_first);
  Helpers.check_bool "parent stream replays" true (parent_draws = parent_after);
  Helpers.check_bool "parent and child streams differ" false
    (parent_draws = child_draws)

let test_rng_case_seed_pure () =
  let s1 = Rng.case_seed ~seed:0 5 in
  let s2 = Rng.case_seed ~seed:0 5 in
  Helpers.check_int "pure in (seed, index)" s1 s2;
  Helpers.check_bool "non-negative" true (s1 >= 0);
  Helpers.check_bool "index-sensitive" false
    (Rng.case_seed ~seed:0 5 = Rng.case_seed ~seed:0 6);
  Helpers.check_bool "seed-sensitive" false
    (Rng.case_seed ~seed:0 5 = Rng.case_seed ~seed:1 5)

let test_rng_ranges () =
  let rng = Rng.create ~seed:99 in
  for _ = 1 to 1000 do
    let v = Rng.range rng (-3) 7 in
    Helpers.check_bool "range within bounds" true (v >= -3 && v <= 7);
    let f = Rng.float rng in
    Helpers.check_bool "float in [0,1)" true (f >= 0.0 && f < 1.0)
  done

(* ---------------- Gen ---------------------------------------------- *)

let test_gen_valid_and_compilable () =
  (* Every generated workload must pass the IR validator (Gen calls it)
     AND compile without tripping the vectorizer's ABI budgets, across
     many seeds and both option polarities. *)
  for i = 0 to 199 do
    let cs = Rng.case_seed ~seed:31415 i in
    let c = Diff.case_of_seed cs in
    match
      Codegen.compile_workload ~options:c.Diff.options ~name:"gen"
        ~kind:Occamy_core.Workload.Mixed c.Diff.loops
    with
    | exception e ->
      Alcotest.failf "seed %d does not compile: %s" cs (Printexc.to_string e)
    | _ -> ()
  done

let test_gen_deterministic () =
  let w1 = Gen.workload (Rng.create ~seed:123) in
  let w2 = Gen.workload (Rng.create ~seed:123) in
  Helpers.check_bool "same seed, same workload" true (w1 = w2)

let test_gen_no_loop_carried_deps () =
  for i = 0 to 99 do
    let rng = Rng.create ~seed:(Rng.case_seed ~seed:777 i) in
    List.iter
      (fun l ->
        let written = Loop_ir.arrays_written l in
        let read = Loop_ir.arrays_read l in
        List.iter
          (fun w ->
            if List.mem w read then
              Alcotest.failf "loop %s both reads and writes %s"
                l.Loop_ir.name w)
          written)
      (Gen.workload rng)
  done

(* ---------------- Diff --------------------------------------------- *)

let test_diff_clean_cases_pass () =
  for i = 0 to 19 do
    let cs = Rng.case_seed ~seed:0 i in
    match Fuzz.run_case cs with
    | Ok () -> ()
    | Error f ->
      Alcotest.failf "case %d fails: %a" cs
        (fun ppf -> Format.fprintf ppf "%a" Diff.pp_failure)
        f
  done

let test_diff_catches_injected_bugs () =
  (* Each seeded bug must be caught within a small budget of cases. *)
  List.iter
    (fun (name, _) ->
      let report =
        Fuzz.run ~inject_name:name ~seed:0 ~count:50 ~jobs:1 ()
      in
      Helpers.check_bool
        (Printf.sprintf "injection %s is caught" name)
        true
        (report.Fuzz.counterexample <> None))
    Fuzz.injections

let test_fuzz_rejects_invalid_args () =
  (* A negative count or non-positive deadline used to run zero cases
     and report success; both must now be rejected loudly, like
     Domain_pool rejects a bad job count. *)
  (match Fuzz.run ~seed:0 ~count:(-1) ~jobs:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative count accepted");
  (match Fuzz.run ~minutes:0.0 ~seed:0 ~count:10 ~jobs:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "zero minutes accepted");
  match Fuzz.run ~minutes:(-2.5) ~seed:0 ~count:10 ~jobs:1 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative minutes accepted"

(* ---------------- Shrink ------------------------------------------- *)

let find_counterexample ~inject_name =
  let report = Fuzz.run ~inject_name ~seed:0 ~count:50 ~jobs:1 () in
  match report.Fuzz.counterexample with
  | Some cx -> cx
  | None -> Alcotest.failf "no counterexample for %s" inject_name

let test_shrink_still_fails () =
  let cx = find_counterexample ~inject_name:"stencil-off-by-one" in
  let inject = Option.get (Fuzz.inject_of_name "stencil-off-by-one") in
  (match Diff.run ~inject cx.Fuzz.cx_shrunk with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "shrunk case no longer fails");
  Helpers.check_bool "shrunk no larger than original" true
    (Shrink.size cx.Fuzz.cx_shrunk <= Shrink.size cx.Fuzz.cx_original)

let test_shrink_deterministic () =
  let cx1 = find_counterexample ~inject_name:"short-trip" in
  let cx2 = find_counterexample ~inject_name:"short-trip" in
  Helpers.check_int "same failing seed" cx1.Fuzz.cx_seed cx2.Fuzz.cx_seed;
  Helpers.check_bool "same shrunk witness" true
    (cx1.Fuzz.cx_shrunk.Diff.loops = cx2.Fuzz.cx_shrunk.Diff.loops)

let test_shrink_preserves_schedule () =
  let cx = find_counterexample ~inject_name:"short-trip" in
  Helpers.check_int "schedule seed untouched"
    cx.Fuzz.cx_original.Diff.sched_seed cx.Fuzz.cx_shrunk.Diff.sched_seed;
  Helpers.check_bool "options untouched" true
    (cx.Fuzz.cx_original.Diff.options = cx.Fuzz.cx_shrunk.Diff.options)

(* ---------------- Invariants on real runs --------------------------- *)

let test_invariants_hold_on_suite_run () =
  (* A real co-running pair on every architecture: metrics, counters and
     trace must all satisfy the structural invariants. *)
  let cfg = Occamy_core.Config.default in
  let wls = Occamy_workloads.Motivating.pair () in
  List.iter
    (fun arch ->
      let trace =
        Occamy_obs.Trace.for_sim ~cores:cfg.Occamy_core.Config.cores ()
      in
      let m = Occamy_core.Sim.simulate ~cfg ~trace ~arch wls in
      match Occamy_check.Invariant.check_run ~cfg ~arch ~trace m with
      | Ok () -> ()
      | Error msg ->
        Alcotest.failf "%s: invariant violated: %s"
          (Occamy_core.Arch.name arch) msg)
    Occamy_core.Arch.all

(* ---------------- Corpus ------------------------------------------- *)

let test_corpus_replays_clean () =
  List.iter
    (fun (e : Corpus.entry) ->
      match Corpus.replay e with
      | Ok () -> ()
      | Error f ->
        Alcotest.failf "corpus %s (seed %d): %a" e.Corpus.name e.Corpus.seed
          (fun ppf -> Format.fprintf ppf "%a" Diff.pp_failure)
          f)
    Corpus.entries

let test_corpus_hits_skip_path () =
  (* The quiescent-* entries exist to keep the fast-forward skip path
     under corpus coverage: replaying them must actually take jumps, on
     every architecture. *)
  let cfg = Occamy_core.Config.default in
  List.iter
    (fun name ->
      let e =
        List.find (fun (e : Corpus.entry) -> e.Corpus.name = name)
          Corpus.entries
      in
      let c = Diff.case_of_seed e.Corpus.seed in
      let wl =
        Codegen.compile_workload ~options:c.Diff.options ~name
          ~kind:Occamy_core.Workload.Mixed c.Diff.loops
      in
      let wls =
        List.init cfg.Occamy_core.Config.cores (fun _ -> wl)
      in
      List.iter
        (fun arch ->
          let t = Occamy_core.Sim.create ~cfg ~arch wls in
          ignore (Occamy_core.Sim.run t);
          let skipped = Occamy_core.Sim.skipped_cycles t in
          let total = Occamy_core.Sim.cycle t in
          if skipped <= 0 || total <= 0 then
            Alcotest.failf "%s on %s: skip ratio %d/%d is not positive" name
              (Occamy_core.Arch.name arch) skipped total)
        Occamy_core.Arch.all)
    [ "quiescent-sqrt-chain"; "quiescent-vred-drain" ]

let test_corpus_names_unique () =
  let names = List.map (fun (e : Corpus.entry) -> e.Corpus.name) Corpus.entries in
  Helpers.check_int "unique corpus names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

(* ---------------- Json --------------------------------------------- *)

let test_json_roundtrip () =
  let obj =
    [
      ("a", Json.Num 1.0);
      ("b", Json.Num 3.141592653589793);
      ("c", Json.Str "hello \"world\"\n");
      ("d", Json.Bool true);
      ("e", Json.Null);
    ]
  in
  match Json.parse_flat_obj (Json.obj_to_string obj) with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok back -> Helpers.check_bool "roundtrip" true (obj = back)

let suites =
  [
    ( "check.rng",
      [
        Alcotest.test_case "deterministic streams" `Quick test_rng_deterministic;
        Alcotest.test_case "split independence" `Quick test_rng_split_independence;
        Alcotest.test_case "case_seed is pure" `Quick test_rng_case_seed_pure;
        Alcotest.test_case "ranges in bounds" `Quick test_rng_ranges;
      ] );
    ( "check.gen",
      [
        Alcotest.test_case "valid + compilable" `Quick test_gen_valid_and_compilable;
        Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
        Alcotest.test_case "no loop-carried deps" `Quick test_gen_no_loop_carried_deps;
      ] );
    ( "check.diff",
      [
        Alcotest.test_case "clean cases pass" `Quick test_diff_clean_cases_pass;
        Alcotest.test_case "injected bugs caught" `Quick test_diff_catches_injected_bugs;
        Alcotest.test_case "invalid campaign args rejected" `Quick
          test_fuzz_rejects_invalid_args;
      ] );
    ( "check.shrink",
      [
        Alcotest.test_case "shrunk still fails, no larger" `Quick test_shrink_still_fails;
        Alcotest.test_case "deterministic" `Quick test_shrink_deterministic;
        Alcotest.test_case "schedule preserved" `Quick test_shrink_preserves_schedule;
      ] );
    ( "check.invariant",
      [
        Alcotest.test_case "real runs satisfy invariants" `Quick
          test_invariants_hold_on_suite_run;
      ] );
    ( "check.corpus",
      [
        Alcotest.test_case "replays clean" `Quick test_corpus_replays_clean;
        Alcotest.test_case "quiescent entries hit the skip path" `Quick
          test_corpus_hits_skip_path;
        Alcotest.test_case "unique names" `Quick test_corpus_names_unique;
      ] );
    ( "check.json",
      [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip ] );
  ]
