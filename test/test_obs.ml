(* Tests of the occamy.obs observability layer: the ring-buffer trace
   recorder, the counter registry, the Chrome-trace/CSV/Gantt exporters,
   the Domain_pool observer hook — and the non-perturbation guarantee:
   tracing a simulation must not change its results, and a disabled
   trace must cost nothing. *)

module Trace = Occamy_obs.Trace
module Event = Occamy_obs.Event
module Counters = Occamy_obs.Counters
module Chrome_trace = Occamy_obs.Chrome_trace
module Gantt = Occamy_obs.Gantt
module Arch = Occamy_core.Arch
module Sim = Occamy_core.Sim
module Metrics = Occamy_core.Metrics
module Motivating = Occamy_workloads.Motivating

let check_int = Helpers.check_int
let check_bool = Helpers.check_bool
let check_string = Alcotest.(check string)

let ev_grant core = Event.Vl_grant { core; granted = 4; al = 8 }

(* ---------------- Trace ring buffer -------------------------------- *)

let test_ring_basics () =
  let t = Trace.create ~capacity:16 ~tracks:[ "a"; "b" ] () in
  check_bool "enabled" true (Trace.enabled t);
  check_int "tracks" 2 (Trace.num_tracks t);
  check_string "name" "b" (Trace.track_name t ~track:1);
  Trace.record t ~track:0 ~cycle:3 (ev_grant 0);
  Trace.record t ~track:0 ~cycle:5 (ev_grant 0);
  Trace.record t ~track:1 ~cycle:4 (ev_grant 1);
  check_int "total" 3 (Trace.total_events t);
  match Trace.events t ~track:0 with
  | [ (3, Event.Vl_grant _); (5, Event.Vl_grant _) ] -> ()
  | l -> Alcotest.failf "unexpected events (%d)" (List.length l)

let test_ring_overflow_drops_oldest () =
  let t = Trace.create ~capacity:4 ~tracks:[ "a" ] () in
  for i = 1 to 10 do
    Trace.record t ~track:0 ~cycle:i (ev_grant 0)
  done;
  check_int "dropped" 6 (Trace.dropped t ~track:0);
  check_int "retained" 4 (List.length (Trace.events t ~track:0));
  (* Oldest first, and the oldest retained is cycle 7. *)
  let cycles = List.map fst (Trace.events t ~track:0) in
  Alcotest.(check (list int)) "cycles" [ 7; 8; 9; 10 ] cycles

let test_disabled_trace_inert () =
  let t = Trace.disabled in
  check_bool "disabled" false (Trace.enabled t);
  Trace.record t ~track:0 ~cycle:1 (ev_grant 0);
  check_int "no events" 0 (Trace.total_events t)

let test_disabled_guard_no_allocation () =
  (* The call-site pattern `if Trace.enabled tr then ...` must not
     allocate when tracing is off: the cost of a disabled trace is one
     branch per site, independent of how often it runs. A small constant
     slack absorbs the boxed floats of the Gc counters themselves. *)
  let tr = Trace.disabled in
  let iters = 100_000 in
  let before = Gc.minor_words () in
  for i = 1 to iters do
    if Trace.enabled tr then
      Trace.record tr ~track:0 ~cycle:i (ev_grant 0)
  done;
  let allocated = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "allocated %.0f words over %d iterations" allocated iters)
    true
    (allocated < 256.0)

let test_for_sim_layout () =
  let t = Trace.for_sim ~cores:2 () in
  check_int "tracks" 3 (Trace.num_tracks t);
  check_string "core0" "core0" (Trace.track_name t ~track:0);
  check_string "lanemgr" "LaneMgr"
    (Trace.track_name t ~track:(Trace.lanemgr_track t))

(* ---------------- Counters ----------------------------------------- *)

let test_counters () =
  let c = Counters.create () in
  Counters.incr c "a.hits";
  Counters.incr ~by:4 c "a.hits";
  Counters.set c "b.gauge" 2.5;
  check_bool "mem" true (Counters.mem c "a.hits");
  Alcotest.(check (float 0.0)) "incr" 5.0 (Counters.get_exn c "a.hits");
  Alcotest.(check (float 0.0)) "set" 2.5 (Counters.get_exn c "b.gauge");
  check_bool "missing" true (Counters.get c "nope" = None);
  check_int "length" 2 (Counters.length c);
  (match Counters.to_list c with
  | [ ("a.hits", _); ("b.gauge", _) ] -> ()
  | _ -> Alcotest.fail "to_list not name-sorted");
  check_int "with_prefix" 1 (List.length (Counters.with_prefix c ~prefix:"a."));
  let csv = Counters.to_csv c in
  check_bool "csv header" true
    (String.length csv > 10 && String.sub csv 0 10 = "name,value")

(* ---------------- simulation: non-perturbation --------------------- *)

let small_pair = lazy (Motivating.pair ~tc0:512 ~tc1:1024 ())

let run_arch ?trace arch =
  Sim.simulate ?trace ~arch (Lazy.force small_pair)

let test_tracing_not_perturbing () =
  (* Bit-identical metrics with tracing absent, explicitly disabled, and
     enabled — on every architecture. Tracing only reads simulator
     state, so this is an equality, not an approximation. *)
  List.iter
    (fun arch ->
      let plain = run_arch arch in
      let off = run_arch ~trace:Trace.disabled arch in
      let traced =
        run_arch ~trace:(Trace.for_sim ~cores:2 ()) arch
      in
      check_bool (Arch.name arch ^ ": disabled identical") true (plain = off);
      check_bool (Arch.name arch ^ ": traced identical") true (plain = traced))
    Arch.all

let test_traced_run_content () =
  let trace = Trace.for_sim ~cores:2 () in
  let r = run_arch ~trace Arch.Occamy in
  check_bool "recorded something" true (Trace.total_events trace > 0);
  (* Every core track carries phase spans. *)
  for core = 0 to 1 do
    let evs = List.map snd (Trace.events trace ~track:core) in
    let has p = List.exists p evs in
    check_bool
      (Printf.sprintf "core%d phase_begin" core)
      true
      (has (function Event.Phase_begin _ -> true | _ -> false));
    check_bool
      (Printf.sprintf "core%d phase_end" core)
      true
      (has (function Event.Phase_end _ -> true | _ -> false))
  done;
  (* The lane-manager track has replans carrying a full decision vector
     and per-core roofline verdicts. *)
  let mgr = List.map snd (Trace.events trace ~track:(Trace.lanemgr_track trace)) in
  let replan_shapes =
    List.filter_map
      (function
        | Event.Replan { decisions; verdicts; _ } ->
          Some (Array.length decisions, Array.length verdicts)
        | _ -> None)
      mgr
  in
  check_bool "at least one replan" true (replan_shapes <> []);
  List.iter
    (fun (d, v) ->
      check_int "decision vector per core" 2 d;
      check_int "verdict per core" 2 v)
    replan_shapes;
  (* MSR <VL> outcomes are visible. *)
  let all_evs = ref [] in
  Trace.iter trace (fun ~track:_ ~cycle:_ ev -> all_evs := ev :: !all_evs);
  check_bool "vl grant or deny" true
    (List.exists
       (function Event.Vl_grant _ | Event.Vl_deny _ -> true | _ -> false)
       !all_evs);
  (* Cycle stamps are nondecreasing within each track. *)
  for track = 0 to Trace.num_tracks trace - 1 do
    let cycles = List.map fst (Trace.events trace ~track) in
    check_bool
      (Printf.sprintf "track %d ordered" track)
      true
      (List.sort compare cycles = cycles)
  done;
  ignore r

(* ---------------- exporters ---------------------------------------- *)

(* Minimal JSON syntax checker: accepts the whole string or fails the
   test. Enough to guarantee chrome://tracing will parse the file. *)
let assert_valid_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "invalid JSON at %d: %s" !pos msg in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
          pos := !pos + 2;
          go ()
        | _ ->
          incr pos;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      && (match s.[!pos] with
         | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
         | _ -> false)
    do
      incr pos
    done;
    if !pos = start then fail "expected number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then incr pos
      else
        let rec members () =
          skip_ws ();
          parse_string ();
          skip_ws ();
          expect ':';
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ()
          | Some '}' -> incr pos
          | _ -> fail "expected , or }"
        in
        members ()
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then incr pos
      else
        let rec elements () =
          parse_value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            elements ()
          | Some ']' -> incr pos
          | _ -> fail "expected , or ]"
        in
        elements ()
    | Some '"' -> parse_string ()
    | Some ('t' | 'f' | 'n') ->
      while !pos < n && (match s.[!pos] with 'a' .. 'z' -> true | _ -> false) do
        incr pos
      done
    | Some _ -> parse_number ()
    | None -> fail "unexpected end"
  in
  parse_value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let traced_occamy =
  lazy
    (let trace = Trace.for_sim ~cores:2 () in
     ignore (run_arch ~trace Arch.Occamy);
     trace)

let test_chrome_json_valid () =
  let trace = Lazy.force traced_occamy in
  let json = Chrome_trace.to_json trace in
  assert_valid_json json;
  let contains sub =
    let rec go i =
      i + String.length sub <= String.length json
      && (String.sub json i (String.length sub) = sub || go (i + 1))
    in
    go 0
  in
  check_bool "traceEvents" true (contains "\"traceEvents\"");
  check_bool "thread names" true (contains "thread_name");
  check_bool "replan event" true (contains "\"replan\"");
  check_bool "lanemgr lane" true (contains "LaneMgr")

let test_csv_shape () =
  let trace = Lazy.force traced_occamy in
  let csv = Chrome_trace.to_csv trace in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  check_string "header" "track,cycle,event,core,args" (List.hd lines);
  check_int "one row per event"
    (Trace.total_events trace)
    (List.length lines - 1);
  (* Five columns everywhere: the args column is |-separated, never
     containing commas. *)
  List.iter
    (fun l ->
      check_int ("columns of " ^ l) 5
        (List.length (String.split_on_char ',' l)))
    lines

let test_gantt () =
  let trace = Lazy.force traced_occamy in
  let g = Gantt.render ~width:60 trace in
  let contains sub =
    let rec go i =
      i + String.length sub <= String.length g
      && (String.sub g i (String.length sub) = sub || go (i + 1))
    in
    go 0
  in
  check_bool "core0 row" true (contains "core0");
  check_bool "lanemgr row" true (contains "LaneMgr");
  check_bool "replan marks" true (contains "*");
  check_bool "legend" true (contains "legend");
  check_string "disabled render" "(trace disabled: nothing to render)\n"
    (Gantt.render Trace.disabled)

(* ---------------- exporter edge cases -------------------------------- *)

let test_chrome_json_escaping () =
  (* Hostile strings in track names and task labels — quotes,
     backslashes, newlines, tabs, raw control bytes — must come out as
     JSON escapes, never verbatim, or chrome://tracing rejects the
     file. *)
  let nasty = "q\"uote\\back\nnl\ttab\x01ctl" in
  let t = Trace.create ~capacity:64 ~tracks:[ "track \"zero\"\n"; "b" ] () in
  Trace.record t ~track:0 ~cycle:1
    (Event.Task_begin { worker = 0; index = 0; label = nasty });
  Trace.record t ~track:0 ~cycle:4
    (Event.Task_end { worker = 0; index = 0; label = nasty });
  let json = Chrome_trace.to_json t in
  assert_valid_json json;
  let contains sub =
    let rec go i =
      i + String.length sub <= String.length json
      && (String.sub json i (String.length sub) = sub || go (i + 1))
    in
    go 0
  in
  check_bool "quote escaped" true (contains "q\\\"uote");
  check_bool "backslash escaped" true (contains "\\\\back");
  check_bool "newline escaped" true (contains "\\nnl");
  check_bool "tab escaped" true (contains "\\ttab");
  check_bool "control byte as \\u0001" true (contains "\\u0001");
  (* Only structural newlines may survive raw; any other raw control
     byte means a string leaked through unescaped. *)
  String.iter
    (fun c ->
      if Char.code c < 0x20 && c <> '\n' then
        Alcotest.failf "raw control byte %#x in JSON output" (Char.code c))
    json

(* The painted cells of a named track's Gantt row (between the bars). *)
let gantt_row g name =
  let lines = String.split_on_char '\n' g in
  match
    List.find_opt
      (fun l ->
        String.length l >= String.length name
        && String.sub l 0 (String.length name) = name)
      lines
  with
  | None -> Alcotest.failf "no Gantt row for track %s in:\n%s" name g
  | Some l -> (
    match String.index_opt l '|' with
    | None -> Alcotest.failf "Gantt row %S has no bars" l
    | Some i -> String.sub l (i + 1) (String.length l - i - 2))

let test_gantt_zero_length_span () =
  (* A span that begins and ends on the same cycle still paints exactly
     one column instead of vanishing (or underflowing the paint loop). *)
  let t = Trace.create ~capacity:64 ~tracks:[ "t0" ] () in
  Trace.record t ~track:0 ~cycle:5
    (Event.Task_begin { worker = 0; index = 0; label = "zero" });
  Trace.record t ~track:0 ~cycle:5
    (Event.Task_end { worker = 0; index = 0; label = "zero" });
  (* A later instant pins the horizon so 1 char = 1 cycle at width 72. *)
  Trace.record t ~track:0 ~cycle:60
    (Event.Vl_grant { core = 0; granted = 4; al = 4 });
  let g = Gantt.render ~width:72 t in
  let row = gantt_row g "t0" in
  check_int "row width" 72 (String.length row);
  check_bool "painted at its cycle" true (row.[5] = 'A');
  check_int "exactly one painted column" 1
    (String.fold_left (fun n c -> if c = 'A' then n + 1 else n) 0 row);
  let contains sub =
    let rec go i =
      i + String.length sub <= String.length g
      && (String.sub g i (String.length sub) = sub || go (i + 1))
    in
    go 0
  in
  check_bool "legend names the span" true (contains "A=zero")

let test_gantt_overlapping_spans () =
  (* Two overlapping spans on one track: both must appear in the row and
     the legend; in the contested region the later-starting span paints
     over the earlier one (spans are painted in start order). *)
  let t = Trace.create ~capacity:64 ~tracks:[ "t0" ] () in
  Trace.record t ~track:0 ~cycle:0
    (Event.Task_begin { worker = 0; index = 0; label = "x" });
  Trace.record t ~track:0 ~cycle:20
    (Event.Task_begin { worker = 0; index = 1; label = "y" });
  Trace.record t ~track:0 ~cycle:40
    (Event.Task_end { worker = 0; index = 0; label = "x" });
  Trace.record t ~track:0 ~cycle:60
    (Event.Task_end { worker = 0; index = 1; label = "y" });
  let g = Gantt.render ~width:72 t in
  let row = gantt_row g "t0" in
  check_bool "x paints its exclusive region" true (row.[0] = 'A');
  check_bool "later span wins the overlap" true (row.[30] = 'B');
  check_bool "y paints past x's end" true (row.[59] = 'B');
  check_bool "nothing painted past the last span" true (row.[60] = '.');
  let contains sub =
    let rec go i =
      i + String.length sub <= String.length g
      && (String.sub g i (String.length sub) = sub || go (i + 1))
    in
    go 0
  in
  check_bool "legend has both spans" true (contains "A=x" && contains "B=y")

let test_gantt_unmatched_begin () =
  (* A Begin with no matching End is closed at the trace horizon rather
     than dropped — a crashed phase still shows up in the picture. *)
  let t = Trace.create ~capacity:64 ~tracks:[ "t0" ] () in
  Trace.record t ~track:0 ~cycle:10
    (Event.Task_begin { worker = 0; index = 0; label = "open" });
  Trace.record t ~track:0 ~cycle:50
    (Event.Vl_grant { core = 0; granted = 4; al = 4 });
  let g = Gantt.render ~width:72 t in
  let row = gantt_row g "t0" in
  check_bool "runs from its begin" true (row.[10] = 'A');
  check_bool "closed at the horizon" true (row.[49] = 'A');
  check_bool "not painted past the horizon" true (row.[50] = '.')

(* ---------------- Metrics counters view ----------------------------- *)

let test_metrics_counters () =
  let r = run_arch Arch.Occamy in
  let reg = Metrics.counters r in
  let geti name = int_of_float (Counters.get_exn reg name) in
  check_int "total_cycles" r.Metrics.total_cycles (geti "sim.total_cycles");
  check_int "cores" 2 (geti "sim.cores");
  check_int "core0.finish" r.Metrics.cores.(0).Metrics.finish
    (geti "core0.finish");
  check_int "core1.reconfigs" r.Metrics.cores.(1).Metrics.reconfigs
    (geti "core1.reconfigs");
  check_int "core0.phases"
    (List.length r.Metrics.cores.(0).Metrics.phases)
    (geti "core0.phases");
  check_bool "mem accesses counted" true
    (Counters.get_exn reg "mem.l2.accesses" >= 0.0);
  check_bool "mem bytes move somewhere" true
    (List.exists
       (fun level ->
         Counters.get_exn reg
           ("mem."
           ^ String.lowercase_ascii (Occamy_mem.Level.to_string level)
           ^ ".bytes")
         > 0.0)
       Occamy_mem.Level.all);
  check_bool "per-phase counters present" true
    (Counters.with_prefix reg ~prefix:"core0.phase." <> [])

(* ---------------- Domain_pool observer ------------------------------ *)

let test_pool_observer_sequential () =
  let starts = ref [] and stops = ref [] in
  let observer ~worker ~index ~phase =
    match phase with
    | `Start -> starts := (worker, index) :: !starts
    | `Stop -> stops := (worker, index) :: !stops
    | `Steal _ -> Alcotest.fail "no steals on the sequential path"
  in
  let out =
    Occamy_util.Domain_pool.map ~jobs:1 ~observer (fun x -> x * x) [ 1; 2; 3 ]
  in
  Alcotest.(check (list int)) "results" [ 1; 4; 9 ] out;
  check_int "starts" 3 (List.length !starts);
  check_int "stops" 3 (List.length !stops);
  check_bool "sequential runs on worker 0" true
    (List.for_all (fun (w, _) -> w = 0) !starts)

let test_pool_observer_parallel () =
  (* Observers run on worker domains; collect via per-worker cells to
     stay race-free, as Trace.sweep_observer does with tracks. *)
  let workers = 3 in
  let counts = Array.init workers (fun _ -> ref 0) in
  let observer ~worker ~index:_ ~phase =
    match phase with
    | `Start | `Steal _ -> ()
    | `Stop -> incr counts.(worker)
  in
  let tasks = List.init 10 Fun.id in
  let out =
    Occamy_util.Domain_pool.map ~jobs:workers ~observer (fun x -> x + 1) tasks
  in
  Alcotest.(check (list int)) "results" (List.init 10 (fun i -> i + 1)) out;
  check_int "every task observed" 10
    (Array.fold_left (fun acc r -> acc + !r) 0 counts)

let test_sweep_observer_spans () =
  let trace = Trace.for_sweep ~workers:1 () in
  let observer =
    Trace.sweep_observer trace ~label_of:(fun i -> Printf.sprintf "task%d" i)
  in
  ignore
    (Occamy_util.Domain_pool.map ~jobs:1 ~observer
       (fun x -> x)
       [ 10; 20 ]);
  let evs = List.map snd (Trace.events trace ~track:0) in
  let count p = List.length (List.filter p evs) in
  check_int "begins" 2
    (count (function Event.Task_begin _ -> true | _ -> false));
  check_int "ends" 2
    (count (function Event.Task_end _ -> true | _ -> false));
  check_bool "labels carried" true
    (List.exists
       (function
         | Event.Task_begin { label = "task1"; _ } -> true
         | _ -> false)
       evs)

let test_sweep_observer_steals () =
  (* Under forced parallelism every track still pairs its begin/end
     events, and any Task_steal carries a victim that is a real, other
     worker. Steals themselves are schedule-dependent, so only their
     shape is asserted, not their count. *)
  let workers = 3 and n = 24 in
  let trace = Trace.for_sweep ~workers () in
  let observer =
    Trace.sweep_observer trace ~label_of:(fun i -> Printf.sprintf "t%d" i)
  in
  ignore
    (Occamy_util.Domain_pool.map ~jobs:workers ~oversubscribe:true ~observer
       (fun x -> x * 2)
       (List.init n Fun.id));
  let begins = ref 0 and ends = ref 0 in
  for w = 0 to workers - 1 do
    List.iter
      (fun (_, ev) ->
        match ev with
        | Event.Task_begin _ -> incr begins
        | Event.Task_end _ -> incr ends
        | Event.Task_steal { worker; victim; index; _ } ->
          check_int "steal recorded on the thief's track" w worker;
          check_bool "victim is another worker" true (victim <> worker);
          check_bool "victim in range" true (victim >= 0 && victim < workers);
          check_bool "index in range" true (index >= 0 && index < n)
        | _ -> ())
      (Trace.events trace ~track:w)
  done;
  check_int "one begin per task" n !begins;
  check_int "one end per task" n !ends

let suites =
  [
    ( "obs",
      [
        Alcotest.test_case "ring basics" `Quick test_ring_basics;
        Alcotest.test_case "ring overflow" `Quick test_ring_overflow_drops_oldest;
        Alcotest.test_case "disabled inert" `Quick test_disabled_trace_inert;
        Alcotest.test_case "disabled allocates nothing" `Quick
          test_disabled_guard_no_allocation;
        Alcotest.test_case "for_sim layout" `Quick test_for_sim_layout;
        Alcotest.test_case "counters" `Quick test_counters;
        Alcotest.test_case "tracing not perturbing" `Quick
          test_tracing_not_perturbing;
        Alcotest.test_case "traced run content" `Quick test_traced_run_content;
        Alcotest.test_case "chrome json valid" `Quick test_chrome_json_valid;
        Alcotest.test_case "csv shape" `Quick test_csv_shape;
        Alcotest.test_case "sweep observer steals" `Quick
          test_sweep_observer_steals;
        Alcotest.test_case "gantt" `Quick test_gantt;
        Alcotest.test_case "chrome json escaping" `Quick
          test_chrome_json_escaping;
        Alcotest.test_case "gantt zero-length span" `Quick
          test_gantt_zero_length_span;
        Alcotest.test_case "gantt overlapping spans" `Quick
          test_gantt_overlapping_spans;
        Alcotest.test_case "gantt unmatched begin" `Quick
          test_gantt_unmatched_begin;
        Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
        Alcotest.test_case "pool observer sequential" `Quick
          test_pool_observer_sequential;
        Alcotest.test_case "pool observer parallel" `Quick
          test_pool_observer_parallel;
        Alcotest.test_case "sweep observer spans" `Quick
          test_sweep_observer_spans;
      ] );
  ]
