(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (§7) and runs bechamel micro-benchmarks of the
   library's hot paths.

     dune exec bench/main.exe            -- everything
     dune exec bench/main.exe -- fig10   -- one section (any of: table3
        table4 table5 fig2 fig10 fig12 fig14 fig16 ablations micro perf
        scaling profile attrib)

   Absolute cycle counts come from our simulator, not the authors' RTL
   calibration, so only the *shape* (orderings, rough factors, crossover
   points) is expected to match; each table's title carries the paper's
   reported numbers for comparison. EXPERIMENTS.md records the
   paper-vs-measured summary. *)

module Table = Occamy_util.Table
module Domain_pool = Occamy_util.Domain_pool
module Work_steal = Occamy_util.Work_steal
module Bench_log = Occamy_util.Bench_log
module Arch = Occamy_core.Arch
module Config = Occamy_core.Config
module E = Occamy_experiments

let known_sections =
  [ "table4"; "table3"; "fig2"; "table5"; "fig14"; "fig10"; "fig16"; "fig12";
    "ablations"; "micro"; "perf"; "scaling"; "profile"; "attrib";
    "reliability" ]

let usage () =
  Printf.eprintf
    "usage: bench [-j N] [--max-jobs N] [--oversubscribe] [--trace-dir DIR] \
     [--golden-check|--golden-update] [--profile] [%s]...\n\
    \       bench compare [--baseline FILE] [--threshold PCT] [--window N] \
     [FILE]...\n\
     %!"
    (String.concat "|" known_sections)

(* ------------------------------------------------------------------ *)
(* `bench compare`: gate the latest run of each trajectory group        *)
(* against a named baseline or the trailing median (Bench_log).         *)
(* ------------------------------------------------------------------ *)

let run_compare args =
  let bad msg =
    Printf.eprintf "bench compare: %s\n%!" msg;
    usage ();
    exit 2
  in
  let parse_float flag s =
    match float_of_string_opt s with
    | Some x when x > 0.0 -> x
    | _ -> bad (Printf.sprintf "%s expects a positive number, got %S" flag s)
  in
  let rec parse threshold window baseline files = function
    | [] -> (threshold, window, baseline, List.rev files)
    | "--threshold" :: v :: rest ->
      parse (parse_float "--threshold" v /. 100.0) window baseline files rest
    | [ "--threshold" ] -> bad "--threshold expects a percentage"
    | "--window" :: v :: rest -> (
      match int_of_string_opt v with
      | Some n when n >= 1 -> parse threshold n baseline files rest
      | _ -> bad (Printf.sprintf "--window expects a count, got %S" v))
    | [ "--window" ] -> bad "--window expects a count"
    | "--baseline" :: f :: rest -> parse threshold window (Some f) files rest
    | [ "--baseline" ] -> bad "--baseline expects a file"
    | s :: _ when String.length s > 0 && s.[0] = '-' ->
      bad (Printf.sprintf "unknown option %S" s)
    | f :: rest -> parse threshold window baseline (f :: files) rest
  in
  let threshold, window, baseline_file, files =
    parse 0.10 5 None [] args
  in
  let files =
    if files <> [] then files
    else
      List.filter Sys.file_exists
        [ Bench_log.sections_path; Bench_log.perf_path;
          Bench_log.profile_path; Bench_log.attrib_path;
          Bench_log.reliability_path ]
  in
  if files = [] then bad "no trajectory files found (run some bench sections first)";
  let load_all paths =
    List.concat_map
      (fun path ->
        let entries, warnings = Bench_log.load ~path in
        List.iter (Printf.eprintf "bench compare: warning: %s\n%!") warnings;
        entries)
      paths
  in
  let entries = load_all files in
  let baseline =
    Option.map
      (fun f ->
        if not (Sys.file_exists f) then
          bad (Printf.sprintf "baseline file %s does not exist" f);
        load_all [ f ])
      baseline_file
  in
  let comparisons =
    Bench_log.compare_entries ~threshold ~window ?baseline entries
  in
  if comparisons = [] then begin
    Printf.printf
      "bench compare: nothing to compare yet (each group needs history%s)\n%!"
      (match baseline_file with
      | Some f -> Printf.sprintf " or a matching group in %s" f
      | None -> "");
    exit 0
  end;
  Table.print
    (Bench_log.comparison_table
       ~title:
         (Printf.sprintf "Bench trajectory: latest vs %s (gate: +%.0f%%)"
            (match baseline_file with
            | Some f -> "baseline " ^ f
            | None -> Printf.sprintf "trailing median (window %d)" window)
            (threshold *. 100.0))
       comparisons);
  match Bench_log.regressions comparisons with
  | [] ->
    Printf.printf "bench compare: no regression above %.0f%%\n%!"
      (threshold *. 100.0)
  | regs ->
    Printf.eprintf "bench compare: %d group%s regressed more than %.0f%%:\n%!"
      (List.length regs)
      (if List.length regs > 1 then "s" else "")
      (threshold *. 100.0);
    List.iter
      (fun c ->
        Printf.eprintf "  %s (-j%d): %.3fs vs %.3fs (%.2fx)\n%!"
          c.Bench_log.c_section c.Bench_log.c_jobs c.Bench_log.c_latest
          c.Bench_log.c_baseline c.Bench_log.c_ratio)
      regs;
    exit 1

let () =
  match Array.to_list Sys.argv with
  | _ :: "compare" :: rest ->
    run_compare rest;
    exit 0
  | _ -> ()

(* `-j N` / `-jN` / `--jobs N` selects the worker-domain count; the
   OCCAMY_JOBS environment variable is the fallback, then the machine's
   recommended domain count capped at `--max-jobs` (default 16; the cap
   only matters on hosts with more cores than that). The pool further
   caps the effective workers at [Domain.recommended_domain_count]
   unless `--oversubscribe` (or OCCAMY_OVERSUBSCRIBE=1) forces the full
   request. `--trace-dir DIR` (or the OCCAMY_TRACE environment
   variable) writes Chrome trace JSON for the traced sections into DIR.
   Remaining arguments are section names. *)
type golden_mode = No_golden | Golden_check | Golden_update

let jobs, oversubscribe, trace_dir, golden_mode, requested =
  let bad msg = Printf.eprintf "bench: %s\n%!" msg; usage (); exit 2 in
  let parse_jobs s =
    match int_of_string_opt s with
    | Some j when j >= 1 -> j
    | _ -> bad (Printf.sprintf "invalid job count %S" s)
  in
  let rec parse jobs cap osub tdir golden prof acc = function
    | [] -> (jobs, cap, osub, tdir, golden, prof, List.rev acc)
    | ("-j" | "--jobs") :: n :: rest ->
      parse (Some (parse_jobs n)) cap osub tdir golden prof acc rest
    | [ ("-j" | "--jobs") ] -> bad "-j expects a count"
    | "--max-jobs" :: n :: rest ->
      parse jobs (Some (parse_jobs n)) osub tdir golden prof acc rest
    | [ "--max-jobs" ] -> bad "--max-jobs expects a count"
    | "--oversubscribe" :: rest -> parse jobs cap true tdir golden prof acc rest
    | "--trace-dir" :: d :: rest ->
      parse jobs cap osub (Some d) golden prof acc rest
    | [ "--trace-dir" ] -> bad "--trace-dir expects a directory"
    | "--golden-check" :: rest ->
      parse jobs cap osub tdir Golden_check prof acc rest
    | "--golden-update" :: rest ->
      parse jobs cap osub tdir Golden_update prof acc rest
    | "--profile" :: rest -> parse jobs cap osub tdir golden true acc rest
    | s :: rest when String.length s > 2 && String.sub s 0 2 = "-j" ->
      parse
        (Some (parse_jobs (String.sub s 2 (String.length s - 2))))
        cap osub tdir golden prof acc rest
    | s :: rest when String.length s > 0 && s.[0] = '-' ->
      ignore rest;
      bad (Printf.sprintf "unknown option %S" s)
    | s :: rest -> parse jobs cap osub tdir golden prof (s :: acc) rest
  in
  let jobs, cap, osub, tdir, golden, prof, requested =
    parse None None false None No_golden false []
      (List.tl (Array.to_list Sys.argv))
  in
  (* `--profile` adds the profile section to an explicit section list
     (with no sections given, every section — profile included — runs
     anyway). *)
  let requested =
    if prof && requested <> [] && not (List.mem "profile" requested) then
      requested @ [ "profile" ]
    else requested
  in
  let tdir =
    match tdir with Some _ -> tdir | None -> Sys.getenv_opt "OCCAMY_TRACE"
  in
  (* An unknown section name must fail loudly: silently running *nothing*
     and still printing the success banner hid typos like `fig11`. *)
  (match List.filter (fun s -> not (List.mem s known_sections)) requested with
  | [] -> ()
  | unknown ->
    bad
      (Printf.sprintf "unknown section%s %s; valid sections: %s"
         (if List.length unknown > 1 then "s" else "")
         (String.concat ", " unknown)
         (String.concat " " known_sections)));
  let jobs =
    match jobs with
    | Some j -> j
    | None -> Occamy_util.Domain_pool.jobs_from_env ?cap ()
  in
  (jobs, osub, tdir, golden, requested)

let section_enabled name = requested = [] || List.mem name requested

(* Machine-readable per-section timings, one JSON object per line,
   appended so successive runs accumulate a history; format and
   schema-versioning live in Bench_log (which also fixes the old fig12
   all-zero line: round-trip seconds printing and a non-empty worker
   vector even for pool-free sections). *)
let record_section ?(jobs_used = jobs) name seconds =
  Bench_log.record_section ~section:name ~seconds ~jobs:jobs_used ()

let timed name f =
  if section_enabled name then begin
    Printf.printf "\n##### %s #####\n%!" name;
    Domain_pool.reset_totals ();
    let t0 = Unix.gettimeofday () in
    f ();
    let dt = Unix.gettimeofday () -. t0 in
    let t = Domain_pool.totals () in
    if t.Domain_pool.t_max_workers > 1 then
      Printf.printf
        "[%s: %.1fs; pool: %d workers, %d tasks, %d steals, %d minor \
         collections]\n%!"
        name dt t.Domain_pool.t_max_workers t.Domain_pool.t_tasks
        t.Domain_pool.t_steals t.Domain_pool.t_minor_collections
    else Printf.printf "[%s: %.1fs]\n%!" name dt;
    record_section name dt
  end

(* ------------------------------------------------------------------ *)
(* Tracing (--trace-dir / OCCAMY_TRACE)                                *)
(* ------------------------------------------------------------------ *)

module Trace = Occamy_obs.Trace
module Chrome_trace = Occamy_obs.Chrome_trace

let ensure_dir dir = if not (Sys.file_exists dir) then Unix.mkdir dir 0o755

let trace_path dir file = Filename.concat dir file

(* Traced re-run of the Figure 2 motivating pair, one Chrome JSON per
   architecture. Cheap (the motivating pair is small), so it simply runs
   when requested rather than piggy-backing on run_fig2's instances. *)
let write_motivating_traces dir =
  ensure_dir dir;
  let wls = Occamy_workloads.Motivating.pair () in
  List.iter
    (fun arch ->
      let trace = Trace.for_sim ~cores:Config.default.Config.cores () in
      ignore (Occamy_core.Sim.simulate ~trace ~arch wls);
      let path =
        trace_path dir (Printf.sprintf "motivating_%s.json" (Arch.name arch))
      in
      Chrome_trace.write_json ~path trace;
      Printf.printf "  wrote %s\n%!" path)
    Arch.all

(* ------------------------------------------------------------------ *)

let run_table4 () = Table.print (E.Table3.table4 ())

let run_table3 () =
  Table.print (E.Table3.table3 ());
  Printf.printf "max |analysed - paper| over all phases: %.3f\n"
    (E.Table3.max_oi_error ())

let run_fig2 () =
  let t = E.Fig2.run () in
  Table.print (E.Fig2.stats_table t);
  List.iter (fun arch -> Table.print (E.Fig2.timeline_table t arch)) Arch.all;
  Option.iter write_motivating_traces trace_dir

let run_table5 () = Table.print (E.Fig14.table5 ())

let run_fig14 () =
  Table.print (E.Fig14.lane_sweep_table ~jobs ~oversubscribe ());
  let corun = E.Fig14.run_corun ~jobs ~oversubscribe () in
  Table.print (E.Fig14.partition_timeline_table corun);
  Table.print (E.Fig14.issue_rate_table corun)

let run_fig10 () =
  (* With tracing on, each Domain_pool worker records its pair tasks as
     wall-clock spans on its own track — a Gantt of the sweep itself. *)
  let sweep_trace =
    Option.map (fun _ -> Trace.for_sweep ~workers:jobs ()) trace_dir
  in
  let observer =
    Option.map
      (fun trace ->
        let labels =
          Array.of_list
            (List.map
               (fun p -> p.Occamy_workloads.Suite.label)
               Occamy_workloads.Suite.pairs)
        in
        Trace.sweep_observer trace ~label_of:(fun i -> labels.(i)))
      sweep_trace
  in
  let t =
    E.Fig10.run ~jobs ~oversubscribe ?observer
      ~progress:(fun l -> Printf.printf "  running %s...\n%!" l)
      ()
  in
  Table.print (E.Fig10.speedup_table t ~core:1);
  Table.print (E.Fig10.speedup_table t ~core:0);
  Table.print (E.Fig10.util_table t);
  Table.print (E.Fig10.fts_stall_table t);
  Table.print (E.Fig10.overhead_table t);
  Option.iter
    (fun dir ->
      Option.iter
        (fun trace ->
          ensure_dir dir;
          let path = trace_path dir "fig10_sweep.json" in
          Chrome_trace.write_json ~path trace;
          Printf.printf "  wrote %s\n%!" path)
        sweep_trace)
    trace_dir

let run_ablations () =
  List.iter Table.print (E.Ablations.all ~jobs ~oversubscribe ())

let run_fig12 () =
  Table.print (E.Fig12.area_table ~cores:2 ());
  Table.print (E.Fig12.area_table ~cores:4 ());
  print_endline (E.Fig12.fts_overhead_note ())

let run_fig16 () =
  let runs = E.Fig16.run ~jobs ~oversubscribe () in
  Table.print (E.Fig16.speedup_table runs)

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the library's hot paths.               *)
(* ------------------------------------------------------------------ *)

let micro_tests () =
  let open Bechamel in
  let mot_pair () = Occamy_workloads.Motivating.pair ~tc0:1024 ~tc1:4096 () in
  let sim_step =
    Test.make ~name:"simulate motivating pair (Occamy, small)"
      (Staged.stage (fun () ->
           ignore (Occamy_core.Sim.simulate ~arch:Arch.Occamy (mot_pair ()))))
  in
  let compile =
    Test.make ~name:"compile WL20 (2 phases)"
      (Staged.stage (fun () -> ignore (Occamy_workloads.Spec.workload 20)))
  in
  let partition =
    Test.make ~name:"lane partition plan (4 workloads)"
      (Staged.stage (fun () ->
           ignore
             (Occamy_lanemgr.Partition.plan Occamy_lanemgr.Roofline.default_cfg
                ~total:16
                [
                  { Occamy_lanemgr.Partition.key = 0;
                    oi = Occamy_isa.Oi.uniform 0.1;
                    level = Occamy_mem.Level.L2 };
                  { key = 1; oi = Occamy_isa.Oi.uniform 0.3;
                    level = Occamy_mem.Level.L2 };
                  { key = 2; oi = Occamy_isa.Oi.uniform 1.0;
                    level = Occamy_mem.Level.Vec_cache };
                  { key = 3; oi = Occamy_isa.Oi.uniform 2.0;
                    level = Occamy_mem.Level.Vec_cache };
                ])))
  in
  let interp =
    let wl =
      Occamy_compiler.Codegen.compile_workload ~name:"axpy"
        ~kind:Occamy_core.Workload.Mixed
        [
          Occamy_compiler.Loop_ir.(
            loop ~name:"axpy" ~trip_count:4096
              [ store "y" (fma "y".%[0] (param "a" 1.5) "x".%[0]) ]);
        ]
    in
    Test.make ~name:"functional interp (axpy 4096)"
      (Staged.stage (fun () ->
           let t = Occamy_isa.Interp.create wl.Occamy_core.Workload.program in
           ignore (Occamy_isa.Interp.run t)))
  in
  [ sim_step; compile; partition; interp ]

let run_micro () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let test = Test.make_grouped ~name:"occamy" ~fmt:"%s/%s" (micro_tests ()) in
  let raw = Benchmark.all cfg [ instance ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let tbl =
    Table.create ~title:"Micro-benchmarks (bechamel)"
      ~header:[ "benchmark"; "time/run" ]
      ~aligns:[ Table.Left; Table.Right ] ()
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ ns ] ->
        let pretty =
          if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
          else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
          else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
          else Printf.sprintf "%.0f ns" ns
        in
        rows := (name, pretty) :: !rows
      | _ -> rows := (name, "n/a") :: !rows)
    results;
  List.iter (fun (n, v) -> Table.add_row tbl [ n; v ])
    (List.sort compare !rows);
  Table.print tbl

(* ------------------------------------------------------------------ *)
(* Simulator throughput: naive loop vs fast-forward (BENCH_perf.json)  *)
(* ------------------------------------------------------------------ *)

let perf_json = Bench_log.perf_path

(* The CI perf-smoke gate: generous and flake-resistant — fail only if
   fast-forwarding makes the whole measured set >10% slower overall. *)
let perf_gate = 1.10

let run_perf () =
  let pair = Occamy_workloads.Motivating.pair () in
  let scenarios =
    [
      (* The dense co-run: both cores issue nearly every cycle, so there
         is nothing to skip — this row checks fast-forward costs nothing
         when it cannot help (the paper's premise is a saturated machine). *)
      ("pair", "motivating pair", fun () -> E.Perf.measure_all ~repeat:3 pair);
      (* The §5 OS interaction: both co-runners preempted for a 1ms-class
         quantum (2M cycles at 2GHz). The machine is provably idle for
         the whole away window — where event-horizon skipping pays. *)
      ( "preempt",
        "motivating pair, both cores preempted 2M cycles",
        fun () ->
          E.Perf.measure_all
            ~cfg:{ Config.default with Config.cs_away_cycles = 2_000_000 }
            ~context_switches:[ (0, 5000); (1, 5000) ]
            ~repeat:3 pair );
      (* A memory-bound co-run (Figure 10's Mem+Mem category). *)
      ( "membound",
        "memory-bound pair (Mem+Mem)",
        fun () ->
          let p =
            List.find
              (fun p -> p.Occamy_workloads.Suite.category = `Mem_mem)
              Occamy_workloads.Suite.pairs
          in
          E.Perf.measure_all ~repeat:3
            (Occamy_workloads.Suite.compile_pair p) );
    ]
  in
  let measured =
    List.map
      (fun (name, desc, f) ->
        Printf.printf "  %s: %s\n%!" name desc;
        let samples = f () in
        List.iter
          (fun s -> Format.printf "    %a@." E.Perf.pp_sample s)
          samples;
        { E.Perf.sc_name = name; sc_samples = samples })
      scenarios
  in
  E.Perf.write_json ~path:perf_json measured;
  Printf.printf "  wrote %s\n%!" perf_json;
  let naive = E.Perf.grand_naive_seconds measured in
  let ff = E.Perf.grand_ff_seconds measured in
  Printf.printf "  total: naive %.2fs, fast-forward %.2fs (speedup %.2fx)\n%!"
    naive ff
    (naive /. Float.max ff 1e-9);
  if ff > perf_gate *. naive then begin
    Printf.eprintf
      "bench: fast-forward run is >%.0f%% slower than the naive loop \
       (%.2fs vs %.2fs)\n%!"
      ((perf_gate -. 1.0) *. 100.0)
      ff naive;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Parallel-scaling smoke gate (CI: `bench scaling`)                   *)
(* ------------------------------------------------------------------ *)

(* The whole point of the elastic pool is that `-j N` must never be
   slower than `-j 1`; this section proves it on whatever host runs it.
   A reduced fig10 sweep (tc_scale 0.3, ~25 pairs x 4 architectures) is
   timed sequentially and then in parallel, both recorded as their own
   JSONL lines. The tolerance is generous (25%) so a noisy 2-core CI
   runner does not flake, but a return of the old oversubscription
   meltdown (4-13x slower) fails loudly. *)
let scaling_gate = 1.25

let run_scaling () =
  let tc_scale = 0.3 in
  let par_jobs = max 2 (min jobs 4) in
  let eff =
    Domain_pool.effective_workers ~oversubscribe
      ~cores:(Domain.recommended_domain_count ())
      ~jobs:par_jobs ~tasks:par_jobs
  in
  let time ~jobs:j =
    Domain_pool.reset_totals ();
    let t0 = Unix.gettimeofday () in
    ignore
      (E.Fig10.run ~tc_scale ~jobs:j ~oversubscribe
         ~progress:(fun _ -> ())
         ());
    let dt = Unix.gettimeofday () -. t0 in
    record_section ~jobs_used:j (Printf.sprintf "scaling-j%d" j) dt;
    dt
  in
  let t_seq = time ~jobs:1 in
  Printf.printf "  -j 1: %.2fs\n%!" t_seq;
  let t_par = time ~jobs:par_jobs in
  Printf.printf "  -j %d: %.2fs (%d effective worker%s, speedup %.2fx)\n%!"
    par_jobs t_par eff
    (if eff = 1 then "" else "s")
    (t_seq /. Float.max t_par 1e-9);
  if t_par > scaling_gate *. t_seq then begin
    Printf.eprintf
      "bench: -j %d is >%.0f%% slower than -j 1 (%.2fs vs %.2fs) — \
       parallel runs must never lose to sequential\n%!"
      par_jobs
      ((scaling_gate -. 1.0) *. 100.0)
      t_par t_seq;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Self-profile: where do dense-run simulator cycles go?               *)
(* (`bench profile` / `--profile`; writes BENCH_profile.json)          *)
(* ------------------------------------------------------------------ *)

let profile_json = Bench_log.profile_path

let run_profile () =
  let reports =
    List.map (fun arch -> E.Prof_run.profile_pair ~arch ()) Arch.all
  in
  List.iter
    (fun r ->
      if r.E.Prof_run.rp_arch = Arch.Occamy then begin
        Table.print (E.Prof_run.summary_table r);
        Table.print (E.Prof_run.work_table r)
      end;
      Printf.printf "  %-8s %s\n%!"
        (Arch.name r.E.Prof_run.rp_arch)
        (E.Prof_run.top3_line r);
      E.Prof_run.record ~scenario:"pair" r)
    reports;
  Printf.printf "  wrote %s\n%!" profile_json;
  let ov =
    E.Prof_run.measure_overhead ~arch:Arch.Occamy
      (Occamy_workloads.Motivating.pair ())
  in
  Printf.printf
    "  profiling overhead (Occamy pair, best of 3): plain %.3fs, enabled \
     %.3fs (%+.1f%%)\n%!"
    ov.E.Prof_run.ov_plain_seconds ov.E.Prof_run.ov_enabled_seconds
    ((ov.E.Prof_run.ov_enabled_ratio -. 1.0) *. 100.0);
  (* Exclusive attribution partitions sampled time, so the shares must
     sum to 100% whenever anything was sampled — a broken scope pairing
     shows up here before it corrupts a report. *)
  List.iter
    (fun r ->
      let shares = Occamy_obs.Prof.shares r.E.Prof_run.rp_prof in
      let sum = List.fold_left (fun a (_, s) -> a +. s) 0.0 shares in
      if shares <> [] && Float.abs (sum -. 100.0) > 1.0 then begin
        Printf.eprintf
          "bench: %s stage shares sum to %.3f%%, expected 100%% (unbalanced \
           profiler scopes?)\n%!"
          (Arch.name r.E.Prof_run.rp_arch) sum;
        exit 1
      end)
    reports

(* ------------------------------------------------------------------ *)
(* Top-down cycle accounting (`bench attrib`; BENCH_attrib.json)       *)
(* ------------------------------------------------------------------ *)

let attrib_json = Bench_log.attrib_path

(* Attribution must stay a one-branch tax on the dense hot loop: an
   attribution-enabled pair run may not exceed the committed dense-run
   baseline (the profile.pair.<arch> medians of
   test/golden/bench_baseline.json) by more than 5%. *)
let attrib_gate = 1.05

(* Mirror Bench_log.compare_entries's noise floor: a baseline below this
   is clock noise and cannot be gated on. In the committed baseline only
   the Private rows clear it, so the gate effectively bites there. *)
let attrib_gate_min_seconds = 0.05

let attrib_baseline_path =
  Filename.concat (Filename.concat "test" "golden") "bench_baseline.json"

let run_attrib () =
  (* Best-of-3 per architecture: the fastest run feeds the regression
     gate (single-sample gating at a 5% threshold would flake on a noisy
     CI runner), the first is recorded as the trajectory sample. *)
  let reports =
    List.map
      (fun arch ->
        let r0 = E.Attrib_run.run_pair ~arch () in
        let best = ref r0.E.Attrib_run.ar_seconds in
        for _ = 2 to 3 do
          let r = E.Attrib_run.run_pair ~arch () in
          if r.E.Attrib_run.ar_seconds < !best then
            best := r.E.Attrib_run.ar_seconds
        done;
        (r0, !best))
      Arch.all
  in
  List.iter
    (fun (r, _) ->
      if r.E.Attrib_run.ar_arch = Arch.Occamy then begin
        Table.print (E.Attrib_run.summary_table r);
        print_string
          (Occamy_obs.Attrib.render_timeseries r.E.Attrib_run.ar_attrib)
      end;
      E.Attrib_run.record ~scenario:"pair" r)
    reports;
  Printf.printf "  wrote %s\n%!" attrib_json;
  (* Exclusive attribution partitions the timeline, so per core the
     bucket shares must sum to 100% (the recorder's conservation
     invariant already holds exactly in cycles; this re-checks the
     derived percentage view end to end). *)
  List.iter
    (fun (r, _) ->
      let a = r.E.Attrib_run.ar_attrib in
      for core = 0 to Occamy_obs.Attrib.cores a - 1 do
        let sum =
          List.fold_left
            (fun acc b -> acc +. Occamy_obs.Attrib.share a ~core b)
            0.0 Occamy_obs.Attrib.all
        in
        if Float.abs (sum -. 100.0) > 0.5 then begin
          Printf.eprintf
            "bench: %s core%d attribution shares sum to %.3f%%, expected \
             100%%\n%!"
            (Arch.name r.E.Attrib_run.ar_arch)
            core sum;
          exit 1
        end
      done)
    reports;
  let ov =
    E.Attrib_run.measure_overhead ~arch:Arch.Occamy
      (Occamy_workloads.Motivating.pair ())
  in
  Printf.printf
    "  accounting overhead (Occamy pair, best of 3): plain %.3fs, enabled \
     %.3fs (%+.1f%%)\n%!"
    ov.E.Attrib_run.av_plain_seconds ov.E.Attrib_run.av_enabled_seconds
    ((ov.E.Attrib_run.av_enabled_ratio -. 1.0) *. 100.0);
  let entries, _ = Bench_log.load ~path:attrib_baseline_path in
  List.iter
    (fun (r, best) ->
      let arch = r.E.Attrib_run.ar_arch in
      let section = "profile.pair." ^ Arch.name arch in
      let times =
        List.filter_map
          (fun e ->
            if e.Bench_log.e_section = section then
              Some e.Bench_log.e_seconds
            else None)
          entries
      in
      match List.sort compare times with
      | [] -> ()
      | sorted ->
        let n = List.length sorted in
        let a = Array.of_list sorted in
        let median =
          if n mod 2 = 1 then a.(n / 2)
          else 0.5 *. (a.((n / 2) - 1) +. a.(n / 2))
        in
        if median >= attrib_gate_min_seconds && best > attrib_gate *. median
        then begin
          Printf.eprintf
            "bench: %s attribution-enabled pair run took %.3fs (best of 3), \
             more than %.0f%% over the %s baseline median %.3fs\n%!"
            (Arch.name arch) best
            ((attrib_gate -. 1.0) *. 100.0)
            attrib_baseline_path median;
          exit 1
        end)
    reports

(* ------------------------------------------------------------------ *)
(* Reliability: TMR cost/benefit (BENCH_reliability.json)              *)
(* ------------------------------------------------------------------ *)

let reliability_json = Bench_log.reliability_path

let run_reliability () =
  let t0 = Unix.gettimeofday () in
  let r = E.Reliability.run () in
  Format.printf "%a@." E.Reliability.pp r;
  E.Reliability.write_json ~path:reliability_json
    ~seconds:(Unix.gettimeofday () -. t0)
    r;
  Printf.printf "wrote %s\n%!" reliability_json;
  (* The acceptance gate: a TMR trial whose output diverges from the
     fault-free run is silent corruption — never acceptable. *)
  let silent = E.Reliability.silent r in
  if silent > 0 then begin
    Printf.eprintf
      "bench: %d silent corruption%s escaped TMR (%d/%d trials masked)\n%!"
      silent
      (if silent = 1 then "" else "s")
      r.E.Reliability.tmr_faults.E.Reliability.masked
      r.E.Reliability.tmr_faults.E.Reliability.trials;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Golden-metrics drift gate (--golden-check / --golden-update)        *)
(* ------------------------------------------------------------------ *)

(* The motivating pair on all four architectures is cheap, touches every
   layer (compiler, interpreter-compiled programs, lane manager, memory
   hierarchy), and is bit-deterministic given Config.seed — so its key
   metrics make a sharp drift detector: any change to simulated
   behaviour moves at least one of them, and an intended change is
   recorded by regenerating the file. *)

module Json = Occamy_util.Json

let golden_path = Filename.concat (Filename.concat "test" "golden") "metrics.json"

let golden_core_keys cores =
  List.concat
    (List.init cores (fun c ->
         List.map
           (Printf.sprintf "core%d.%s" c)
           [
             "finish"; "issued_compute"; "issued_mem"; "reconfigs";
             (* Injection is off in every gated machine: these must stay
                0, pinning the fault layer's zero-overhead default. *)
             "fault_opportunities"; "faults_injected";
           ]))

let golden_sim_keys =
  [ "sim.total_cycles"; "sim.simd_util"; "sim.busy_lane_cycles";
    "sim.replans"; "mem.veccache.bytes"; "mem.l2.bytes"; "mem.dram.bytes" ]

(* Per-core attribution shares: where each core's cycles went, as
   percentages — a shape detector on top of the absolute counts (a
   classifier change that conserves cycles but re-buckets them still
   drifts here). *)
let golden_attrib_keys cores =
  List.concat
    (List.init cores (fun c ->
         List.map
           (fun b ->
             Printf.sprintf "core%d.attrib.%s.share" c
               (Occamy_obs.Attrib.name b))
           Occamy_obs.Attrib.all))

(* Two gated machines: the 2-core motivating pair (unprefixed keys, the
   original gate) and the first 4-core group of §7.6 at a reduced trip
   count (keys under "4core.") — so 4-core partitioning drift is caught
   by the same check. *)
let golden_metrics () =
  let machines =
    [
      ("", Config.default, Occamy_workloads.Motivating.pair ());
      ( "4core.",
        Config.four_core,
        Occamy_workloads.Suite.compile_group ~tc_scale:0.3
          (List.hd Occamy_workloads.Suite.four_core_groups) );
      (* The motivating pair lowered with lane-level TMR (keys under
         "tmr."), at reduced trip counts — replicated issue streams and
         voter instructions change lane demand, so TMR timing drift is
         caught by the same gate. Injection itself stays off. *)
      ( "tmr.",
        Config.default,
        Occamy_workloads.Motivating.pair
          ~options:
            {
              Occamy_compiler.Codegen.default_options with
              Occamy_compiler.Codegen.tmr = true;
            }
          ~tc0:3072 ~tc1:49152 () );
    ]
  in
  List.concat_map
    (fun (prefix, cfg, wls) ->
      (* Attribution shares are gated on the motivating pair only; the
         4-core group keeps the original key set. *)
      let gate_attrib = prefix = "" in
      let per_arch =
        Domain_pool.map ~jobs ~oversubscribe
          (fun arch ->
            let attrib =
              if gate_attrib then
                Occamy_obs.Attrib.create ~cores:cfg.Config.cores ()
              else Occamy_obs.Attrib.disabled
            in
            (arch, Occamy_core.Sim.simulate ~cfg ~attrib ~arch wls))
          Arch.all
      in
      let keys =
        golden_sim_keys
        @ golden_core_keys cfg.Config.cores
        @ (if gate_attrib then golden_attrib_keys cfg.Config.cores else [])
      in
      List.concat_map
        (fun (arch, m) ->
          let cs = Occamy_core.Metrics.counters m in
          List.map
            (fun k ->
              ( Printf.sprintf "%s%s.%s" prefix (Arch.name arch) k,
                Json.Num (Occamy_obs.Counters.get_exn cs k) ))
            keys)
        per_arch)
    machines

let run_golden_update () =
  ensure_dir "test";
  ensure_dir (Filename.concat "test" "golden");
  Json.write_file ~path:golden_path (Json.obj_to_string (golden_metrics ()));
  Printf.printf "wrote %s\n%!" golden_path

let run_golden_check () =
  match Json.read_file ~path:golden_path with
  | Error e ->
    Printf.eprintf
      "bench: cannot read %s (%s)\nRegenerate it with: bench --golden-update\n%!"
      golden_path e;
    exit 1
  | Ok contents ->
    let want =
      match Json.parse_flat_obj contents with
      | Ok kvs ->
        List.filter_map
          (fun (k, v) -> match v with Json.Num f -> Some (k, f) | _ -> None)
          kvs
      | Error e ->
        Printf.eprintf "bench: %s is not a flat JSON object: %s\n%!"
          golden_path e;
        exit 1
    in
    let got =
      List.filter_map
        (fun (k, v) -> match v with Json.Num f -> Some (k, f) | _ -> None)
        (golden_metrics ())
    in
    (* Runs are deterministic, so the gate is near-exact: the epsilon
       only absorbs decimal-printing round-trip of the float metrics. *)
    let drift = ref [] in
    List.iter
      (fun (k, w) ->
        match List.assoc_opt k got with
        | None -> drift := Printf.sprintf "%s: missing from this run" k :: !drift
        | Some g ->
          if Float.abs (g -. w) > 1e-9 *. Float.max 1.0 (Float.abs w) then
            drift :=
              Printf.sprintf "%s: golden %.17g, measured %.17g" k w g :: !drift)
      want;
    List.iter
      (fun (k, _) ->
        if not (List.mem_assoc k want) then
          drift := Printf.sprintf "%s: not in the golden file" k :: !drift)
      got;
    if !drift = [] then
      Printf.printf "golden check: %d metrics match %s\n%!" (List.length want)
        golden_path
    else begin
      Printf.eprintf
        "bench: golden metrics drift detected (%d metric%s):\n%!"
        (List.length !drift)
        (if List.length !drift > 1 then "s" else "");
      List.iter (Printf.eprintf "  %s\n%!") (List.rev !drift);
      Printf.eprintf
        "If the change is intended, regenerate with: bench --golden-update \
         and commit the file.\n%!";
      exit 1
    end

(* ------------------------------------------------------------------ *)

let () =
  match golden_mode with
  | Golden_check -> run_golden_check ()
  | Golden_update -> run_golden_update ()
  | No_golden ->
  Printf.printf
    "Occamy reproduction bench harness (machine: %d cores, %d lanes; %d \
     worker domain%s)\n"
    Config.default.Config.cores
    (Config.total_lanes Config.default)
    jobs
    (if jobs = 1 then "" else "s");
  timed "table4" run_table4;
  timed "table3" run_table3;
  timed "fig2" run_fig2;
  timed "table5" run_table5;
  timed "fig14" run_fig14;
  timed "fig10" run_fig10;
  timed "fig16" run_fig16;
  timed "fig12" run_fig12;
  timed "ablations" run_ablations;
  timed "micro" run_micro;
  timed "perf" run_perf;
  timed "scaling" run_scaling;
  timed "profile" run_profile;
  timed "attrib" run_attrib;
  timed "reliability" run_reliability;
  print_endline "\nAll requested sections completed."
